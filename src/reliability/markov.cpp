#include "reliability/markov.h"

#include <cmath>
#include <vector>

#include "common/error.h"

namespace hdd::reliability {

int MarkovChain::add_state() {
  absorbing_.push_back(false);
  return static_cast<int>(absorbing_.size()) - 1;
}

int MarkovChain::add_states(int count) {
  HDD_REQUIRE(count > 0, "add_states needs a positive count");
  const int first = static_cast<int>(absorbing_.size());
  absorbing_.resize(absorbing_.size() + static_cast<std::size_t>(count),
                    false);
  return first;
}

void MarkovChain::set_absorbing(int state) {
  HDD_ASSERT(state >= 0 && state < num_states());
  absorbing_[static_cast<std::size_t>(state)] = true;
}

void MarkovChain::add_transition(int from, int to, double rate) {
  HDD_ASSERT(from >= 0 && from < num_states());
  HDD_ASSERT(to >= 0 && to < num_states());
  HDD_REQUIRE(rate > 0.0, "transition rate must be positive");
  HDD_REQUIRE(from != to, "self-transitions are meaningless in a CTMC");
  transitions_.push_back({from, to, rate});
}

double MarkovChain::mean_time_to_absorption(int start) const {
  HDD_ASSERT(start >= 0 && start < num_states());
  if (absorbing_[static_cast<std::size_t>(start)]) return 0.0;

  // Index the transient states.
  const int n = num_states();
  std::vector<int> transient_index(static_cast<std::size_t>(n), -1);
  int nt = 0;
  for (int s = 0; s < n; ++s) {
    if (!absorbing_[static_cast<std::size_t>(s)]) {
      transient_index[static_cast<std::size_t>(s)] = nt++;
    }
  }

  // Assemble Q_TT (dense) and the right-hand side -1.
  const auto size = static_cast<std::size_t>(nt);
  std::vector<double> a(size * size, 0.0);
  std::vector<double> b(size, -1.0);
  for (const auto& t : transitions_) {
    if (absorbing_[static_cast<std::size_t>(t.from)]) continue;
    const auto i = static_cast<std::size_t>(
        transient_index[static_cast<std::size_t>(t.from)]);
    a[i * size + i] -= t.rate;  // diagonal: total exit rate
    if (!absorbing_[static_cast<std::size_t>(t.to)]) {
      const auto j = static_cast<std::size_t>(
          transient_index[static_cast<std::size_t>(t.to)]);
      a[i * size + j] += t.rate;
    }
  }

  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> perm(size);
  for (std::size_t i = 0; i < size; ++i) perm[i] = i;
  for (std::size_t col = 0; col < size; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(a[perm[col] * size + col]);
    for (std::size_t r = col + 1; r < size; ++r) {
      const double v = std::fabs(a[perm[r] * size + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    HDD_REQUIRE(best > 1e-300,
                "singular generator: some transient state cannot reach an "
                "absorbing state");
    std::swap(perm[col], perm[pivot]);
    const std::size_t prow = perm[col];
    const double diag = a[prow * size + col];
    for (std::size_t r = col + 1; r < size; ++r) {
      const std::size_t row = perm[r];
      const double factor = a[row * size + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < size; ++c) {
        a[row * size + c] -= factor * a[prow * size + c];
      }
      b[row] -= factor * b[prow];
    }
  }
  // Back substitution.
  std::vector<double> x(size, 0.0);
  for (std::size_t col = size; col-- > 0;) {
    const std::size_t row = perm[col];
    double acc = b[row];
    for (std::size_t c = col + 1; c < size; ++c) {
      acc -= a[row * size + c] * x[c];
    }
    x[col] = acc / a[row * size + col];
  }

  const double result = x[static_cast<std::size_t>(
      transient_index[static_cast<std::size_t>(start)])];
  HDD_REQUIRE(result >= 0.0 && std::isfinite(result),
              "absorption time came out non-finite; check the model");
  return result;
}

}  // namespace hdd::reliability
