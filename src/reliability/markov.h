// Continuous-time Markov chain with mean-time-to-absorption solving.
//
// The reliability analysis of Section VI builds absorbing CTMCs (Figure 11)
// and reports MTTDL = the expected hitting time of the data-loss state.
// For transient states T with generator block Q_TT, the vector of mean
// absorption times t solves  Q_TT · t = -1;  we solve it with partially
// pivoted Gaussian elimination (state counts here are tiny: O(100)).
#pragma once

#include <cstddef>
#include <vector>

namespace hdd::reliability {

class MarkovChain {
 public:
  // Adds a state; returns its index.
  int add_state();

  // Adds `count` states; returns the index of the first.
  int add_states(int count);

  // Marks a state absorbing (transitions out of it are ignored).
  void set_absorbing(int state);

  // Adds a transition with the given rate (must be positive).
  void add_transition(int from, int to, double rate);

  int num_states() const { return static_cast<int>(absorbing_.size()); }

  // Expected time to reach any absorbing state from `start`. Requires at
  // least one absorbing state reachable from every transient state
  // (otherwise the linear system is singular and this throws).
  double mean_time_to_absorption(int start) const;

 private:
  struct Transition {
    int from;
    int to;
    double rate;
  };
  std::vector<Transition> transitions_;
  std::vector<bool> absorbing_;
};

}  // namespace hdd::reliability
