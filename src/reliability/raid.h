// RAID reliability models with and without proactive fault tolerance
// (Section VI of the paper).
//
// Closed forms:
//   Eq. 7 — single drive with failure prediction (Eckart et al. [17]):
//           MTTDL ≈ MTTF / (1 - k·μ/(μ+γ)),
//           k = failure detection rate, γ = 1/TIA, μ = 1/MTTR.
//   Eq. 8 — RAID-6 without prediction (Gibson/Patterson [18]):
//           MTTDL ≈ MTTF³ / (N(N-1)(N-2)·MTTR²),
//   and the matching classic RAID-5 form MTTF²/(N(N-1)·MTTR).
//
// CTMC (Figure 11): for an N-drive array tolerating `tolerated_failures`
// erasures, states are (j failed, i predicted-to-fail) with transitions
//   (N-j-i)·λ·k      → (j, i+1)   a failure is predicted in advance
//   (N-j-i)·λ·(1-k)  → (j+1, i)   a failure arrives unpredicted (l = 1-k)
//   i·γ              → (j+1, i-1) a predicted drive actually fails
//   i·μ              → (j, i-1)   a predicted drive is migrated & replaced
//   μ (when j > 0)   → (j-1, i)   rebuild completes (single repair crew,
//                                 matching Eq. 8's shape)
// and data loss when j exceeds the tolerated erasures. The prediction
// dimension is truncated at `max_predicted` concurrent warnings; because
// λk ≪ μ, γ the truncation error is negligible (validated in tests against
// the untruncated chain for small N).
#pragma once

namespace hdd::reliability {

// Eq. 7. All times in hours; returns hours.
double mttdl_single_drive_with_prediction(double mttf_hours,
                                          double mttr_hours, double fdr,
                                          double tia_hours);

// Eq. 8 and the RAID-5 analogue. Returns hours.
double mttdl_raid6_no_prediction(double mttf_hours, double mttr_hours, int n);
double mttdl_raid5_no_prediction(double mttf_hours, double mttr_hours, int n);

struct RaidPredictionParams {
  int n_drives = 8;
  int tolerated_failures = 2;  // 1 = RAID-5, 2 = RAID-6
  double mttf_hours = 1.39e6;
  double mttr_hours = 8.0;
  double fdr = 0.95;       // k
  double tia_hours = 355;  // 1/γ
  int max_predicted = 30;  // truncation of the prediction dimension

  void validate() const;
};

// Solves the Figure 11 CTMC; returns MTTDL in hours.
double mttdl_raid_with_prediction(const RaidPredictionParams& params);

constexpr double kHoursPerYear = 24.0 * 365.0;

}  // namespace hdd::reliability
