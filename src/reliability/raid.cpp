#include "reliability/raid.h"

#include <algorithm>

#include "common/error.h"
#include "reliability/markov.h"

namespace hdd::reliability {

double mttdl_single_drive_with_prediction(double mttf_hours,
                                          double mttr_hours, double fdr,
                                          double tia_hours) {
  HDD_REQUIRE(mttf_hours > 0 && mttr_hours > 0 && tia_hours > 0,
              "times must be positive");
  HDD_REQUIRE(fdr >= 0.0 && fdr <= 1.0, "fdr must be in [0,1]");
  const double mu = 1.0 / mttr_hours;
  const double gamma = 1.0 / tia_hours;
  const double denom = 1.0 - fdr * mu / (mu + gamma);
  HDD_REQUIRE(denom > 0.0, "degenerate parameters (perfect prediction)");
  return mttf_hours / denom;
}

double mttdl_raid6_no_prediction(double mttf_hours, double mttr_hours,
                                 int n) {
  HDD_REQUIRE(n >= 3, "RAID-6 needs at least 3 drives");
  const double dn = static_cast<double>(n);
  return mttf_hours * mttf_hours * mttf_hours /
         (dn * (dn - 1.0) * (dn - 2.0) * mttr_hours * mttr_hours);
}

double mttdl_raid5_no_prediction(double mttf_hours, double mttr_hours,
                                 int n) {
  HDD_REQUIRE(n >= 2, "RAID-5 needs at least 2 drives");
  const double dn = static_cast<double>(n);
  return mttf_hours * mttf_hours / (dn * (dn - 1.0) * mttr_hours);
}

void RaidPredictionParams::validate() const {
  HDD_REQUIRE(tolerated_failures >= 1 && tolerated_failures <= 3,
              "tolerated_failures must be 1..3");
  HDD_REQUIRE(n_drives > tolerated_failures,
              "array must be larger than its redundancy");
  HDD_REQUIRE(mttf_hours > 0 && mttr_hours > 0 && tia_hours > 0,
              "times must be positive");
  HDD_REQUIRE(fdr >= 0.0 && fdr <= 1.0, "fdr must be in [0,1]");
  HDD_REQUIRE(max_predicted >= 1, "max_predicted must be >= 1");
}

double mttdl_raid_with_prediction(const RaidPredictionParams& params) {
  params.validate();
  const int n = params.n_drives;
  const int tol = params.tolerated_failures;
  const int cap = std::min(params.max_predicted, n - 1);
  const double lambda = 1.0 / params.mttf_hours;
  const double mu = 1.0 / params.mttr_hours;
  const double gamma = 1.0 / params.tia_hours;
  const double k = params.fdr;
  const double l = 1.0 - k;

  // State layout: (j, i) -> j*(cap+1) + i for j in [0, tol], i in [0, cap];
  // one absorbing data-loss state at the end.
  MarkovChain chain;
  const int grid = chain.add_states((tol + 1) * (cap + 1));
  const int loss = chain.add_state();
  chain.set_absorbing(loss);
  auto id = [&](int j, int i) { return grid + j * (cap + 1) + i; };

  for (int j = 0; j <= tol; ++j) {
    for (int i = 0; i <= cap; ++i) {
      const int healthy = n - j - i;
      if (healthy < 0) {
        // Unreachable corner of the rectangular grid (more predicted +
        // failed drives than exist). Give it an exit so the generator stays
        // non-singular; it never affects the start state's hitting time.
        chain.add_transition(id(j, i), loss, 1.0);
        continue;
      }
      const double m = static_cast<double>(healthy);
      const double pi = static_cast<double>(i);

      if (healthy > 0 && k > 0.0 && i < cap) {
        chain.add_transition(id(j, i), id(j, i + 1), m * lambda * k);
      }
      if (healthy > 0 && l > 0.0) {
        chain.add_transition(id(j, i), j == tol ? loss : id(j + 1, i),
                             m * lambda * l);
      }
      if (i > 0) {
        // Predicted drive actually fails before it could be handled.
        chain.add_transition(id(j, i), j == tol ? loss : id(j + 1, i - 1),
                             pi * gamma);
        // Predicted drive migrated and replaced in time.
        chain.add_transition(id(j, i), id(j, i - 1), pi * mu);
      }
      if (j > 0) {
        // Rebuild of one failed drive (single repair crew).
        chain.add_transition(id(j, i), id(j - 1, i), mu);
      }
    }
  }
  return chain.mean_time_to_absorption(id(0, 0));
}

}  // namespace hdd::reliability
