// Non-parametric statistical tests used for feature selection (Section IV-B
// of the paper; originally applied to SMART data by Hughes et al. [8] and
// Murray et al. [6]).
//
// SMART attributes are not normally distributed, so discriminability between
// the good and failed populations is measured with rank statistics:
//
//  * Wilcoxon rank-sum test — do failed-drive samples of an attribute come
//    from the same distribution as good-drive samples?
//  * Reverse arrangements test — does a failed drive's attribute series
//    trend (deteriorate) over time?
//  * z-scores — how far outside the good population do failed samples sit?
#pragma once

#include <span>

namespace hdd::stats {

// Result of a two-sample test, as a normal-approximation z statistic with
// its two-sided p-value.
struct TestResult {
  double z = 0.0;
  double p_value = 1.0;
};

// Wilcoxon rank-sum (Mann–Whitney) test with tie correction.
//
// Returns the z statistic of the rank sum of `xs` against `ys` under the
// null hypothesis of identical distributions (positive z: xs ranks higher).
// Requires both samples non-empty; the normal approximation is used
// unconditionally (sample sizes here are in the thousands).
TestResult rank_sum_test(std::span<const double> xs,
                         std::span<const double> ys);

// Reverse arrangements test for trend in a time series.
//
// Counts pairs (i < j) with series[i] > series[j] (a "reverse arrangement")
// and compares against the count expected under exchangeability,
// n(n-1)/4, using the normal approximation with variance
// n(2n+5)(n-1)/72. Negative z: increasing trend; positive z: decreasing.
// Requires at least 3 observations.
TestResult reverse_arrangements_test(std::span<const double> series);

// Mean absolute z-score of `xs` relative to the empirical mean/stddev of
// the reference population `ref` (Murray et al.'s z-score method). Returns
// 0 when the reference is degenerate.
double mean_abs_zscore(std::span<const double> xs,
                       std::span<const double> ref);

}  // namespace hdd::stats
