// Statistical feature selection (Section IV-B).
//
// Candidates are the twelve basic attribute levels plus change rates of each
// attribute over a set of intervals. Each candidate is scored with the three
// non-parametric methods against a sample of good vs failed telemetry:
//
//   rank_sum_z  — |z| of the Wilcoxon rank-sum test, good vs failed samples;
//   trend_z     — mean |z| of the reverse arrangements test over failed
//                 drives' deterioration-window series (does it trend?);
//   zscore      — mean |z-score| of failed samples under the good population.
//
// The combined score ranks candidates; select_features() keeps the top
// `n_levels` level features and top `n_rates` change-rate features, mirroring
// the paper's outcome (10 levels kept of 12; 3 six-hour change rates).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "smart/features.h"

namespace hdd::stats {

struct CandidateScore {
  smart::FeatureSpec spec;
  double rank_sum_z = 0.0;
  double trend_z = 0.0;
  double zscore = 0.0;

  // Combined discriminability: rank-sum dominates (it compares the two
  // populations directly); the others break ties and reward trending.
  double combined() const {
    return rank_sum_z + 0.25 * trend_z + 0.5 * zscore;
  }
};

struct FeatureSelectionConfig {
  std::vector<int> change_intervals = {3, 6, 12, 24};
  // Failed samples are drawn from the last `failed_window_hours` before
  // failure; good samples are a per-drive random subset.
  int failed_window_hours = 168;
  int good_samples_per_drive = 3;
  int n_levels = 10;
  int n_rates = 3;
  std::uint64_t seed = 1234;
};

// Scores every candidate on the dataset. Sorted by combined score, best
// first.
std::vector<CandidateScore> score_candidates(
    const data::DriveDataset& dataset, const FeatureSelectionConfig& config);

// Runs the full pipeline and returns the selected feature set.
smart::FeatureSet select_features(const data::DriveDataset& dataset,
                                  const FeatureSelectionConfig& config);

}  // namespace hdd::stats
