#include "stats/feature_select.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "stats/nonparametric.h"

namespace hdd::stats {

namespace {

// Evaluates one candidate feature over one drive's samples in [from, to],
// appending values to `out`.
void candidate_values(const smart::DriveRecord& drive,
                      const smart::FeatureSpec& spec, std::int64_t from,
                      std::int64_t to, std::vector<double>& out) {
  const smart::FeatureSet fs{"one", {spec}};
  std::vector<float> rows;
  std::vector<std::int64_t> hours;
  smart::extract_features_range(drive, from, to, fs, rows, hours);
  for (float v : rows) out.push_back(static_cast<double>(v));
}

}  // namespace

std::vector<CandidateScore> score_candidates(
    const data::DriveDataset& dataset, const FeatureSelectionConfig& config) {
  HDD_REQUIRE(config.good_samples_per_drive > 0,
              "need at least one good sample per drive");

  // Build the candidate list: levels + change rates.
  std::vector<smart::FeatureSpec> candidates;
  for (const auto& info : smart::attribute_table()) {
    candidates.push_back({info.attr, 0});
  }
  for (int interval : config.change_intervals) {
    for (const auto& info : smart::attribute_table()) {
      candidates.push_back({info.attr, interval});
    }
  }

  Rng rng(config.seed);

  // Pre-pick good sample indices per drive (shared across candidates so all
  // candidates see the same data).
  std::vector<std::pair<std::size_t, std::size_t>> good_picks;  // drive, idx
  std::vector<std::size_t> failed_drives;
  for (std::size_t di = 0; di < dataset.drives.size(); ++di) {
    const auto& d = dataset.drives[di];
    if (d.empty()) continue;
    if (d.failed) {
      failed_drives.push_back(di);
    } else {
      for (int k = 0; k < config.good_samples_per_drive; ++k) {
        good_picks.emplace_back(di, rng.uniform_int(d.samples.size()));
      }
    }
  }
  HDD_REQUIRE(!failed_drives.empty() && !good_picks.empty(),
              "feature selection needs both classes");

  std::vector<CandidateScore> scores;
  scores.reserve(candidates.size());
  for (const auto& spec : candidates) {
    CandidateScore cs;
    cs.spec = spec;
    const smart::FeatureSet one{"one", {spec}};

    // Good sample values at the pre-picked indices.
    std::vector<double> good_vals;
    good_vals.reserve(good_picks.size());
    for (const auto& [di, si] : good_picks) {
      auto row = smart::extract_features(dataset.drives[di], si, one);
      good_vals.push_back(static_cast<double>((*row)[0]));
    }

    // Failed sample values from the deterioration window, plus per-drive
    // trend z over the same window.
    std::vector<double> failed_vals;
    double trend_sum = 0.0;
    std::size_t trend_n = 0;
    for (std::size_t di : failed_drives) {
      const auto& d = dataset.drives[di];
      const std::int64_t to = d.fail_hour;
      const std::int64_t from = to - config.failed_window_hours;
      std::vector<double> series;
      candidate_values(d, spec, from, to, series);
      for (double v : series) failed_vals.push_back(v);
      if (series.size() >= 3) {
        trend_sum += std::fabs(reverse_arrangements_test(series).z);
        ++trend_n;
      }
    }
    if (failed_vals.empty()) {
      scores.push_back(cs);
      continue;
    }

    cs.rank_sum_z = std::fabs(rank_sum_test(failed_vals, good_vals).z);
    cs.trend_z = trend_n ? trend_sum / static_cast<double>(trend_n) : 0.0;
    cs.zscore = mean_abs_zscore(failed_vals, good_vals);
    scores.push_back(cs);
  }

  std::sort(scores.begin(), scores.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              return a.combined() > b.combined();
            });
  return scores;
}

smart::FeatureSet select_features(const data::DriveDataset& dataset,
                                  const FeatureSelectionConfig& config) {
  const auto scores = score_candidates(dataset, config);
  smart::FeatureSet fs;
  fs.name = "selected";
  int levels = 0, rates = 0;
  for (const auto& cs : scores) {
    if (cs.spec.is_change_rate()) {
      if (rates >= config.n_rates) continue;
      // Keep at most one interval per attribute.
      bool dup = false;
      for (const auto& s : fs.specs) {
        if (s.is_change_rate() && s.attr == cs.spec.attr) dup = true;
      }
      if (dup) continue;
      ++rates;
    } else {
      if (levels >= config.n_levels) continue;
      ++levels;
    }
    fs.specs.push_back(cs.spec);
    if (levels >= config.n_levels && rates >= config.n_rates) break;
  }
  return fs;
}

}  // namespace hdd::stats
