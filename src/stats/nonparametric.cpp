#include "stats/nonparametric.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"

namespace hdd::stats {

TestResult rank_sum_test(std::span<const double> xs,
                         std::span<const double> ys) {
  HDD_REQUIRE(!xs.empty() && !ys.empty(), "rank_sum_test needs both samples");
  const std::size_t n1 = xs.size(), n2 = ys.size();
  const std::size_t n = n1 + n2;

  // Pool, sort, assign mid-ranks for ties.
  struct Tagged {
    double v;
    bool from_x;
  };
  std::vector<Tagged> pool;
  pool.reserve(n);
  for (double v : xs) pool.push_back({v, true});
  for (double v : ys) pool.push_back({v, false});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& a, const Tagged& b) { return a.v < b.v; });

  double rank_sum_x = 0.0;
  double tie_term = 0.0;  // sum of (t^3 - t) over tie groups
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && pool[j].v == pool[i].v) ++j;
    const double t = static_cast<double>(j - i);
    // Mid-rank of the tie group (ranks are 1-based).
    const double mid_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].from_x) rank_sum_x += mid_rank;
    }
    tie_term += t * t * t - t;
    i = j;
  }

  const double dn1 = static_cast<double>(n1), dn2 = static_cast<double>(n2);
  const double dn = static_cast<double>(n);
  const double mean_rank = dn1 * (dn + 1.0) / 2.0;
  double var = dn1 * dn2 / 12.0 *
               ((dn + 1.0) - tie_term / (dn * (dn - 1.0)));
  TestResult r;
  if (var <= 0.0) {
    // All values identical: no evidence of a difference.
    return r;
  }
  r.z = (rank_sum_x - mean_rank) / std::sqrt(var);
  r.p_value = normal_two_sided_p(r.z);
  return r;
}

TestResult reverse_arrangements_test(std::span<const double> series) {
  HDD_REQUIRE(series.size() >= 3,
              "reverse_arrangements_test needs >= 3 observations");
  const std::size_t n = series.size();
  std::size_t reversals = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (series[i] > series[j]) ++reversals;
    }
  }
  const double dn = static_cast<double>(n);
  const double mean = dn * (dn - 1.0) / 4.0;
  const double var = dn * (2.0 * dn + 5.0) * (dn - 1.0) / 72.0;
  TestResult r;
  r.z = (static_cast<double>(reversals) - mean) / std::sqrt(var);
  r.p_value = normal_two_sided_p(r.z);
  return r;
}

double mean_abs_zscore(std::span<const double> xs,
                       std::span<const double> ref) {
  if (xs.empty() || ref.size() < 2) return 0.0;
  const double m = mean(ref);
  const double sd = stddev(ref);
  if (sd <= 0.0) return 0.0;
  double total = 0.0;
  for (double x : xs) total += std::fabs((x - m) / sd);
  return total / static_cast<double>(xs.size());
}

}  // namespace hdd::stats
