#include "io/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace hdd::io {

namespace fs = std::filesystem;

const char* error_class_name(ErrorClass c) {
  switch (c) {
    case ErrorClass::kNone: return "none";
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kPermanent: return "permanent";
    case ErrorClass::kCorrupting: return "corrupting";
  }
  return "unknown";
}

IoStatus IoStatus::from_errno(const std::string& op, const std::string& path,
                              int err) {
  // Classification: transient errors are resource pressure the next attempt
  // may not see; everything else (no space, no permission, no file, media
  // gone read-only) stays failed no matter how often it is retried.
  ErrorClass cls;
  switch (err) {
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case EIO:
    case ENFILE:
    case EMFILE:
    case ENOMEM:
      cls = ErrorClass::kTransient;
      break;
    default:
      cls = ErrorClass::kPermanent;
      break;
  }
  return {cls, err, op + " " + path + ": " + std::strerror(err)};
}

File::~File() = default;
Env::~Env() = default;

IoStatus Env::write_file(const std::string& path, std::string_view data,
                         bool sync) {
  std::unique_ptr<File> f;
  if (auto s = new_append_file(path, /*truncate=*/true, f); !s.ok()) return s;
  if (auto s = f->append(data); !s.ok()) {
    f->abandon();
    return s;
  }
  if (sync) {
    if (auto s = f->sync(); !s.ok()) {
      f->abandon();
      return s;
    }
  }
  return f->close();
}

namespace {

// EINTR-safe open(2): a signal delivered during a checkpoint must not
// masquerade as an I/O fault.
int open_retry(const char* path, int flags, mode_t mode = 0644) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

int fsync_retry(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

int close_retry(int fd) {
  // POSIX leaves the fd state unspecified after EINTR from close(2); on
  // Linux the descriptor is gone either way, so never retry the close —
  // but do not report EINTR as a failure.
  const int rc = ::close(fd);
  return (rc != 0 && errno == EINTR) ? 0 : rc;
}

// Buffered append-only file over a raw descriptor. Buffering mirrors the
// stdio discipline the telemetry store used before the Env port: appends
// accumulate in user space and hit the OS at kBufBytes boundaries, on
// flush()/sync()/close(). bench/micro_io pins the indirection overhead
// against direct stdio.
class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {
    buf_.reserve(kBufBytes);
  }
  ~PosixFile() override { abandon(); }

  IoStatus append(std::string_view data) override {
    if (fd_ < 0) return IoStatus::permanent_error("append " + path_ +
                                                  ": file is closed");
    if (buf_.size() + data.size() > kBufBytes) {
      if (auto s = flush(); !s.ok()) return s;
    }
    if (data.size() >= kBufBytes) return write_all(data);
    buf_.append(data.data(), data.size());
    return IoStatus::success();
  }

  IoStatus flush() override {
    if (fd_ < 0) return IoStatus::permanent_error("flush " + path_ +
                                                  ": file is closed");
    if (buf_.empty()) return IoStatus::success();
    const auto s = write_all(buf_);
    if (s.ok()) buf_.clear();
    return s;
  }

  IoStatus sync() override {
    if (auto s = flush(); !s.ok()) return s;
    if (fsync_retry(fd_) != 0) {
      return IoStatus::from_errno("fsync", path_, errno);
    }
    return IoStatus::success();
  }

  IoStatus close() override {
    if (fd_ < 0) return IoStatus::success();
    const auto flushed = flush();
    const int fd = fd_;
    fd_ = -1;
    buf_.clear();
    if (close_retry(fd) != 0) return IoStatus::from_errno("close", path_, errno);
    return flushed;
  }

  void abandon() override {
    if (fd_ < 0) return;
    close_retry(fd_);
    fd_ = -1;
    buf_.clear();
  }

 private:
  static constexpr std::size_t kBufBytes = 64 * 1024;

  IoStatus write_all(std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoStatus::from_errno("write", path_, errno);
      }
      off += static_cast<std::size_t>(n);
    }
    return IoStatus::success();
  }

  int fd_;
  std::string path_;
  std::string buf_;
};

class PosixEnv final : public Env {
 public:
  IoStatus new_append_file(const std::string& path, bool truncate,
                           std::unique_ptr<File>& out) override {
    const int flags =
        O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    const int fd = open_retry(path.c_str(), flags);
    if (fd < 0) return IoStatus::from_errno("open", path, errno);
    out = std::make_unique<PosixFile>(fd, path);
    return IoStatus::success();
  }

  IoStatus read_file(const std::string& path, std::string& out) const override {
    return read_up_to(path, std::string::npos, out);
  }

  IoStatus read_prefix(const std::string& path, std::size_t n,
                       std::string& out) const override {
    return read_up_to(path, n, out);
  }

  IoStatus list_dir(const std::string& dir,
                    std::vector<std::string>& names) const override {
    names.clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return IoStatus::from_errno("opendir", dir, errno);
    while (true) {
      errno = 0;
      const dirent* e = ::readdir(d);
      if (e == nullptr) {
        const int err = errno;
        ::closedir(d);
        if (err != 0) return IoStatus::from_errno("readdir", dir, err);
        return IoStatus::success();
      }
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      struct stat st{};
      const std::string full = (fs::path(dir) / name).string();
      if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
        names.push_back(name);
      }
    }
  }

  IoStatus create_dirs(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return IoStatus::permanent_error("mkdir " + dir + ": " + ec.message(),
                                       ec.value());
    }
    return IoStatus::success();
  }

  IoStatus rename_file(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return IoStatus::from_errno("rename", from + " -> " + to, errno);
    }
    return IoStatus::success();
  }

  IoStatus remove_file(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return IoStatus::from_errno("unlink", path, errno);
    }
    return IoStatus::success();
  }

  IoStatus resize_file(const std::string& path, std::uint64_t size) override {
    int rc;
    do {
      rc = ::truncate(path.c_str(), static_cast<off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return IoStatus::from_errno("truncate", path, errno);
    return IoStatus::success();
  }

  IoStatus file_size(const std::string& path,
                     std::uint64_t& out) const override {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      return IoStatus::from_errno("stat", path, errno);
    }
    out = static_cast<std::uint64_t>(st.st_size);
    return IoStatus::success();
  }

  bool file_exists(const std::string& path) const override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  IoStatus sync_dir(const std::string& dir) override {
    const int fd = open_retry(dir.c_str(), O_RDONLY);
    if (fd < 0) return IoStatus::from_errno("open", dir, errno);
    const int rc = fsync_retry(fd);
    const int err = errno;
    close_retry(fd);
    // Some filesystems refuse to fsync directories; that is not a fault.
    if (rc != 0 && err != EINVAL && err != EBADF) {
      return IoStatus::from_errno("fsync", dir, err);
    }
    return IoStatus::success();
  }

 private:
  IoStatus read_up_to(const std::string& path, std::size_t limit,
                      std::string& out) const {
    out.clear();
    const int fd = open_retry(path.c_str(), O_RDONLY);
    if (fd < 0) return IoStatus::from_errno("open", path, errno);
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      out.reserve(std::min<std::size_t>(
          limit, static_cast<std::size_t>(st.st_size)));
    }
    char buf[1 << 16];
    while (out.size() < limit) {
      const std::size_t want =
          std::min(sizeof buf, limit - out.size());
      const ssize_t n = ::read(fd, buf, want);
      if (n < 0) {
        if (errno == EINTR) continue;
        const auto s = IoStatus::from_errno("read", path, errno);
        close_retry(fd);
        return s;
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    close_retry(fd);
    return IoStatus::success();
  }
};

}  // namespace

Env& Env::posix() {
  static PosixEnv env;
  return env;
}

IoStatus EnvWrapper::new_append_file(const std::string& path, bool truncate,
                                     std::unique_ptr<File>& out) {
  return target_->new_append_file(path, truncate, out);
}
IoStatus EnvWrapper::read_file(const std::string& path,
                               std::string& out) const {
  return target_->read_file(path, out);
}
IoStatus EnvWrapper::read_prefix(const std::string& path, std::size_t n,
                                 std::string& out) const {
  return target_->read_prefix(path, n, out);
}
IoStatus EnvWrapper::list_dir(const std::string& dir,
                              std::vector<std::string>& names) const {
  return target_->list_dir(dir, names);
}
IoStatus EnvWrapper::create_dirs(const std::string& dir) {
  return target_->create_dirs(dir);
}
IoStatus EnvWrapper::rename_file(const std::string& from,
                                 const std::string& to) {
  return target_->rename_file(from, to);
}
IoStatus EnvWrapper::remove_file(const std::string& path) {
  return target_->remove_file(path);
}
IoStatus EnvWrapper::resize_file(const std::string& path, std::uint64_t size) {
  return target_->resize_file(path, size);
}
IoStatus EnvWrapper::file_size(const std::string& path,
                               std::uint64_t& out) const {
  return target_->file_size(path, out);
}
bool EnvWrapper::file_exists(const std::string& path) const {
  return target_->file_exists(path);
}
IoStatus EnvWrapper::sync_dir(const std::string& dir) {
  return target_->sync_dir(dir);
}

}  // namespace hdd::io
