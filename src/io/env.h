// Env — the single doorway for all filesystem access.
//
// A predictor deployed in a data center runs on the same failing hardware
// it monitors: fsync errors, ENOSPC, torn writes and flipped bits are part
// of the workload, not exceptional. Routing every open/read/write/fsync/
// rename/remove/list through one virtual seam makes the whole fault
// surface injectable on demand (io/fault_env.h) while production code uses
// the EINTR-safe PosixEnv. The layering follows CalicoDB's Env pattern:
// a small abstract interface, a production implementation, and decorators.
//
// Error model (DESIGN.md §8): every operation returns an IoStatus carrying
// an ErrorClass —
//   kTransient  — retrying may succeed (EAGAIN, EBUSY, EIO, fd pressure);
//                 io/retry.h bounds the retries with backoff.
//   kPermanent  — retrying cannot help (ENOSPC, EROFS, EACCES, ENOENT);
//                 callers degrade (seal the segment, quarantine, report).
//   kCorrupting — the operation "succeeded" but the data cannot be trusted
//                 (injected read bit-flips); detected by CRC at the store
//                 layer, never reported through IoStatus by PosixEnv.
// The store maps non-ok statuses to DataError at its public boundary;
// FleetScorer's journal path downgrades them to counted, logged skips.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hdd::io {

enum class ErrorClass { kNone, kTransient, kPermanent, kCorrupting };

// "none" / "transient" / "permanent" / "corrupting".
const char* error_class_name(ErrorClass c);

// [[nodiscard]] on the type: every IoStatus-returning call, present and
// future, warns when the status is dropped. Intentional discards say so
// with a (void) cast at the call site.
struct [[nodiscard]] IoStatus {
  ErrorClass cls = ErrorClass::kNone;
  int sys_errno = 0;       // errno when the failure came from a syscall
  std::string message;     // human-readable context ("fsync seg-01.log: ...")

  bool ok() const { return cls == ErrorClass::kNone; }
  bool transient() const { return cls == ErrorClass::kTransient; }

  static IoStatus success() { return {}; }
  static IoStatus transient_error(std::string msg, int err = 0) {
    return {ErrorClass::kTransient, err, std::move(msg)};
  }
  static IoStatus permanent_error(std::string msg, int err = 0) {
    return {ErrorClass::kPermanent, err, std::move(msg)};
  }
  // Classifies a failed syscall by its errno (see the table in env.cpp).
  static IoStatus from_errno(const std::string& op, const std::string& path,
                             int err);
};

// Thrown by FaultEnv when a FaultPlan crash point fires: the simulated
// process is dead and the stack unwinds out of the I/O path like a kill -9.
// Deliberately NOT derived from std::exception so production catch blocks
// (which downgrade I/O errors to degraded mode) can never swallow a crash;
// only the fault harness catches it.
class CrashPoint {
 public:
  explicit CrashPoint(std::uint64_t op) : op_(op) {}
  std::uint64_t op() const { return op_; }

 private:
  std::uint64_t op_;
};

// A writable, append-oriented file handle. Implementations may buffer in
// user space (PosixEnv does, mirroring stdio): append() makes bytes
// durable only up to the OS's whim; sync() flushes the buffer and fsyncs;
// close() flushes and releases the descriptor, reporting any failure —
// the last chance to learn a buffered write never hit the disk.
class File {
 public:
  virtual ~File();

  virtual IoStatus append(std::string_view data) = 0;
  // Pushes the user-space buffer to the OS (no fsync).
  virtual IoStatus flush() = 0;
  // flush() + fsync.
  virtual IoStatus sync() = 0;
  // Idempotent; flushes first. Errors surface here, not in the destructor.
  virtual IoStatus close() = 0;
  // Drops any buffered bytes and releases the descriptor without writing —
  // what a killed process does. Used by FaultEnv after a crash point.
  virtual void abandon() = 0;
};

class Env {
 public:
  virtual ~Env();

  // The process-wide production environment (PosixEnv).
  static Env& posix();

  // Opens `path` for appending, creating it if missing; `truncate` starts
  // from an empty file. On success `out` holds the handle.
  virtual IoStatus new_append_file(const std::string& path, bool truncate,
                                   std::unique_ptr<File>& out) = 0;
  // Reads the whole file into `out`.
  virtual IoStatus read_file(const std::string& path,
                             std::string& out) const = 0;
  // Reads at most `n` leading bytes (short files yield fewer).
  virtual IoStatus read_prefix(const std::string& path, std::size_t n,
                               std::string& out) const = 0;
  // Names (not paths) of the regular files directly inside `dir`.
  virtual IoStatus list_dir(const std::string& dir,
                            std::vector<std::string>& names) const = 0;
  virtual IoStatus create_dirs(const std::string& dir) = 0;
  virtual IoStatus rename_file(const std::string& from,
                               const std::string& to) = 0;
  virtual IoStatus remove_file(const std::string& path) = 0;
  virtual IoStatus resize_file(const std::string& path,
                               std::uint64_t size) = 0;
  virtual IoStatus file_size(const std::string& path,
                             std::uint64_t& out) const = 0;
  [[nodiscard]] virtual bool file_exists(const std::string& path) const = 0;
  // fsyncs the directory itself, making renames/creates inside it durable.
  virtual IoStatus sync_dir(const std::string& dir) = 0;

  // Convenience: create/truncate `path`, write `data`, optionally fsync,
  // close — reporting the first failure (model_io's save path).
  IoStatus write_file(const std::string& path, std::string_view data,
                      bool sync);
};

// Forwards everything to a wrapped Env; decorators override what they
// intercept (FaultEnv overrides all mutating paths).
class EnvWrapper : public Env {
 public:
  explicit EnvWrapper(Env& target) : target_(&target) {}
  Env& target() const { return *target_; }

  IoStatus new_append_file(const std::string& path, bool truncate,
                           std::unique_ptr<File>& out) override;
  IoStatus read_file(const std::string& path, std::string& out) const override;
  IoStatus read_prefix(const std::string& path, std::size_t n,
                       std::string& out) const override;
  IoStatus list_dir(const std::string& dir,
                    std::vector<std::string>& names) const override;
  IoStatus create_dirs(const std::string& dir) override;
  IoStatus rename_file(const std::string& from, const std::string& to) override;
  IoStatus remove_file(const std::string& path) override;
  IoStatus resize_file(const std::string& path, std::uint64_t size) override;
  IoStatus file_size(const std::string& path,
                     std::uint64_t& out) const override;
  [[nodiscard]] bool file_exists(const std::string& path) const override;
  IoStatus sync_dir(const std::string& dir) override;

 private:
  Env* target_;
};

}  // namespace hdd::io
