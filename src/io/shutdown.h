// Shared SIGINT/SIGTERM latch for long-running commands (ingest, replay,
// serve). One handler, installed once, so interruption means the same
// thing everywhere: finish the current unit of work, seal the journal,
// dump --metrics-out, exit 0 — never drop the tail.
//
// The handler is async-signal-safe: it sets an atomic flag and writes one
// byte to a self-pipe. Loops either poll shutdown_requested() between
// units of work (CLI ingest/replay) or include shutdown_wake_fd() in their
// poll set to be woken out of a blocking accept (the serve daemon).
#pragma once

namespace hdd::io {

// Installs the SIGINT/SIGTERM handlers and creates the self-pipe.
// Idempotent; must be called before the other functions are meaningful.
void install_shutdown_handlers();

// True once a signal arrived or request_shutdown() was called.
bool shutdown_requested();

// Read end of the self-pipe: becomes readable on the first shutdown
// request. -1 before install_shutdown_handlers(). Never read it dry in a
// loop that also checks shutdown_requested() — just poll for readability.
int shutdown_wake_fd();

// Programmatic trigger with the same effect as a signal (the wire
// protocol's shutdown op, tests).
void request_shutdown();

// Test hook: clears the latch and drains the pipe so one process can run
// several shutdown scenarios.
void reset_shutdown_for_tests();

}  // namespace hdd::io
