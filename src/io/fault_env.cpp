#include "io/fault_env.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdd::io {

namespace {

// Key salts for the counter-based fault decisions: the decision for op k
// is a pure function of (seed, salt, k), never of wall time or call-site
// address — this is what makes a FaultPlan replayable bit for bit.
enum Salt : std::uint64_t {
  kTearLen = 1,
  kShortDraw = 2,
  kShortLen = 3,
  kWriteErrDraw = 4,
  kReadFlipDraw = 5,
  kReadFlipBit = 6,
};

}  // namespace

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint64_t max_ops) {
  const CounterRng rng(hash_combine(seed, 0x5EEDFA17ULL));
  FaultPlan p;
  p.seed = seed;
  p.crash_at_op = 1 + rng.bits(1) % (max_ops > 0 ? max_ops : 1);
  p.torn_crash = rng.chance(0.7, 2);
  if (rng.chance(0.35, 3)) {
    p.fail_fsync_n = 1 + rng.bits(4) % 8;
    p.fsync_error = rng.chance(0.5, 5) ? ErrorClass::kTransient
                                       : ErrorClass::kPermanent;
  }
  if (rng.chance(0.25, 6)) {
    p.short_write_prob = 0.01 + 0.04 * rng.uniform(7);
  }
  if (rng.chance(0.25, 8)) {
    p.write_error_prob = 0.01 + 0.04 * rng.uniform(9);
  }
  if (rng.chance(0.2, 10)) {
    p.enospc_after_bytes = 2048 + rng.bits(11) % (64 * 1024);
  }
  return p;
}

std::uint64_t FaultEnv::State::tick(const char* what) {
  check_alive();
  const std::uint64_t op = ops.fetch_add(1) + 1;
  // Non-append ops crash before doing anything; appends handle their own
  // crash so a torn prefix can land first.
  if (op == plan.crash_at_op && std::string_view(what) != "append") {
    record_fault(op, std::string("crash before ") + what);
    crash(op);
  }
  return op;
}

void FaultEnv::State::record_fault(std::uint64_t op, const std::string& what) {
  faults.fetch_add(1);
  if (m_faults != nullptr) m_faults->inc();
  const MutexLock lock(&log_mutex);
  log.push_back("op " + std::to_string(op) + ": " + what);
}

void FaultEnv::State::crash(std::uint64_t op) {
  // First crash of this simulated process life flushes the flight
  // recorder: the 200-seed fault harness then has a span timeline next to
  // the store it tore.
  if (!crashed.exchange(true)) obs::dump_flight_recorder("crash-point");
  throw CrashPoint(op);
}

void FaultEnv::State::check_alive() const {
  if (crashed.load()) throw CrashPoint(plan.crash_at_op);
}

namespace {

// Wraps a base file, applying the plan's append/sync faults. Torn data is
// flushed through the base buffer so the bytes on disk after a fault are
// a pure function of the plan, not of buffer boundaries.
class FaultFile final : public File {
 public:
  FaultFile(std::unique_ptr<File> base,
            std::shared_ptr<FaultEnv::State> state, std::string path)
      : base_(std::move(base)), state_(std::move(state)),
        path_(std::move(path)) {}
  ~FaultFile() override { abandon(); }

  IoStatus append(std::string_view data) override {
    const auto& plan = state_->plan;
    const std::uint64_t op = state_->tick("append");
    if (op == plan.crash_at_op) {
      if (plan.torn_crash && !data.empty()) {
        const std::size_t keep = static_cast<std::size_t>(
            state_->rng.bits(kTearLen, op) % data.size());
        // Best effort by design: the injected fault *is* the partial
        // landing; the base env's own status is irrelevant here.
        (void)base_->append(data.substr(0, keep));
        (void)base_->flush();
        state_->record_fault(op, "crash tearing append to " + path_ +
                                     " at " + std::to_string(keep) + "/" +
                                     std::to_string(data.size()) + " bytes");
      } else {
        state_->record_fault(op, "crash dropping append to " + path_);
      }
      state_->crash(op);
    }
    const std::uint64_t written = state_->bytes_appended.load();
    if (written + data.size() > plan.enospc_after_bytes) {
      const std::size_t keep = plan.enospc_after_bytes > written
          ? static_cast<std::size_t>(plan.enospc_after_bytes - written)
          : 0;
      (void)base_->append(data.substr(0, keep));
      (void)base_->flush();
      state_->bytes_appended.store(plan.enospc_after_bytes);
      state_->record_fault(op, "ENOSPC tearing append to " + path_ + " at " +
                                   std::to_string(keep) + "/" +
                                   std::to_string(data.size()) + " bytes");
      return IoStatus::permanent_error("write " + path_ +
                                           ": no space left on device",
                                       ENOSPC);
    }
    if (plan.write_error_prob > 0.0 &&
        state_->rng.chance(plan.write_error_prob, kWriteErrDraw, op)) {
      state_->record_fault(op, "transient write error on " + path_);
      return IoStatus::transient_error("write " + path_ +
                                           ": injected I/O error",
                                       EIO);
    }
    if (plan.short_write_prob > 0.0 && !data.empty() &&
        state_->rng.chance(plan.short_write_prob, kShortDraw, op)) {
      const std::size_t keep = static_cast<std::size_t>(
          state_->rng.bits(kShortLen, op) % data.size());
      (void)base_->append(data.substr(0, keep));
      (void)base_->flush();
      state_->bytes_appended.fetch_add(keep);
      state_->record_fault(op, "short write to " + path_ + ": " +
                                   std::to_string(keep) + "/" +
                                   std::to_string(data.size()) + " bytes");
      return IoStatus::transient_error("write " + path_ +
                                           ": injected short write",
                                       EIO);
    }
    if (auto s = base_->append(data); !s.ok()) return s;
    state_->bytes_appended.fetch_add(data.size());
    return IoStatus::success();
  }

  IoStatus flush() override {
    state_->check_alive();
    return base_->flush();
  }

  IoStatus sync() override {
    const auto& plan = state_->plan;
    state_->tick("fsync");
    const std::uint64_t n = state_->fsyncs.fetch_add(1) + 1;
    if (plan.fail_fsync_n != FaultPlan::kNever && n == plan.fail_fsync_n) {
      // The buffer still reaches the OS (this harness does not model page-
      // cache loss); only the durability barrier itself fails.
      (void)base_->flush();
      state_->record_fault(n, "injected fsync failure (" +
                                  std::string(error_class_name(
                                      plan.fsync_error)) +
                                  ") on " + path_);
      IoStatus s;
      s.cls = plan.fsync_error;
      s.sys_errno = EIO;
      s.message = "fsync " + path_ + ": injected failure";
      return s;
    }
    return base_->sync();
  }

  IoStatus close() override {
    if (state_->crashed.load()) {
      // A dead process flushes nothing on the way out.
      base_->abandon();
      return IoStatus::success();
    }
    return base_->close();
  }

  void abandon() override { base_->abandon(); }

 private:
  std::unique_ptr<File> base_;
  std::shared_ptr<FaultEnv::State> state_;
  std::string path_;
};

}  // namespace

FaultEnv::FaultEnv(Env& base, FaultPlan plan, obs::Registry* metrics)
    : EnvWrapper(base), state_(std::make_shared<State>(plan)), plan_(plan) {
  obs::Registry& reg =
      metrics != nullptr ? *metrics : obs::Registry::global();
  state_->m_faults = &reg.counter("hdd_io_faults_injected_total",
                                  "Faults injected by a FaultEnv plan.");
}

std::vector<std::string> FaultEnv::fault_log() const {
  const MutexLock lock(&state_->log_mutex);
  return state_->log;
}

IoStatus FaultEnv::new_append_file(const std::string& path, bool truncate,
                                   std::unique_ptr<File>& out) {
  state_->tick("open");
  std::unique_ptr<File> base_file;
  if (auto s = EnvWrapper::new_append_file(path, truncate, base_file);
      !s.ok()) {
    return s;
  }
  out = std::make_unique<FaultFile>(std::move(base_file), state_, path);
  return IoStatus::success();
}

IoStatus FaultEnv::read_file(const std::string& path, std::string& out) const {
  state_->check_alive();
  if (auto s = EnvWrapper::read_file(path, out); !s.ok()) return s;
  maybe_flip(path, out);
  return IoStatus::success();
}

IoStatus FaultEnv::read_prefix(const std::string& path, std::size_t n,
                               std::string& out) const {
  state_->check_alive();
  if (auto s = EnvWrapper::read_prefix(path, n, out); !s.ok()) return s;
  maybe_flip(path, out);
  return IoStatus::success();
}

void FaultEnv::maybe_flip(const std::string& path, std::string& data) const {
  const auto& plan = state_->plan;
  if (plan.read_flip_prob <= 0.0 || data.empty()) return;
  const std::uint64_t read_idx = state_->reads.fetch_add(1) + 1;
  if (!state_->rng.chance(plan.read_flip_prob, kReadFlipDraw, read_idx)) {
    return;
  }
  const std::uint64_t bit =
      state_->rng.bits(kReadFlipBit, read_idx) % (8 * data.size());
  data[bit / 8] = static_cast<char>(
      static_cast<unsigned char>(data[bit / 8]) ^ (1u << (bit % 8)));
  state_->record_fault(read_idx, "bit flip in read of " + path + " (bit " +
                                     std::to_string(bit) + ")");
}

IoStatus FaultEnv::create_dirs(const std::string& dir) {
  state_->tick("mkdir");
  return EnvWrapper::create_dirs(dir);
}

IoStatus FaultEnv::rename_file(const std::string& from, const std::string& to) {
  state_->tick("rename");
  return EnvWrapper::rename_file(from, to);
}

IoStatus FaultEnv::remove_file(const std::string& path) {
  state_->tick("remove");
  return EnvWrapper::remove_file(path);
}

IoStatus FaultEnv::resize_file(const std::string& path, std::uint64_t size) {
  state_->tick("resize");
  return EnvWrapper::resize_file(path, size);
}

IoStatus FaultEnv::sync_dir(const std::string& dir) {
  state_->tick("syncdir");
  return EnvWrapper::sync_dir(dir);
}

}  // namespace hdd::io
