// Bounded retry-with-backoff for transient I/O errors.
//
// Transient errors (io::ErrorClass::kTransient — EAGAIN, EBUSY, EIO, fd
// pressure) are resource states the next attempt may not see; permanent
// errors (ENOSPC, EACCES, ...) fail immediately. The policy bounds the
// damage: max_attempts tries total, exponential backoff between them,
// capped. Every retry increments hdd_io_retries_total on the configured
// registry, so an operator can see a node fighting its disk before the
// node loses.
#pragma once

#include <chrono>
#include <functional>

#include "io/env.h"

namespace hdd::obs {
class Counter;
class Registry;
}  // namespace hdd::obs

namespace hdd::io {

struct RetryPolicy {
  // Total attempts (first try included). 1 disables retrying.
  int max_attempts = 4;
  std::chrono::microseconds initial_backoff{100};
  double multiplier = 4.0;
  std::chrono::microseconds max_backoff{50'000};
  // Tests disable real sleeping; the attempt accounting is unchanged.
  bool sleep = true;
};

// Resolves the retry counter once (registration takes a mutex) and applies
// the policy to any IoStatus-returning operation.
class Retryer {
 public:
  // nullptr registry = obs::Registry::global().
  explicit Retryer(RetryPolicy policy = {}, obs::Registry* metrics = nullptr);

  const RetryPolicy& policy() const { return policy_; }

  // Runs `op` until it succeeds, fails non-transiently, or attempts run
  // out; returns the last status. `what` labels the debug log line.
  IoStatus run(const char* what, const std::function<IoStatus()>& op) const;

 private:
  RetryPolicy policy_;
  obs::Counter* retries_;
};

}  // namespace hdd::io
