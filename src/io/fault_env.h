// FaultEnv — deterministic fault injection behind the Env seam.
//
// A FaultPlan is a seeded, pure-function schedule of faults: the decision
// at mutating operation k is CounterRng(seed).uniform(k, salt), so the
// same plan over the same operation sequence injects byte-identical
// faults — run a scenario twice and the fault log, the recovery taxonomy
// and the post-resume alarms all match (the `fault` ctest label asserts
// exactly this).
//
// Injectable faults:
//   * fail the Nth fsync (transient or permanent),
//   * ENOSPC once cumulative appended bytes cross a budget (the in-flight
//     append is torn at the budget boundary, like a real full disk),
//   * probabilistic short writes (a prefix lands, the rest is lost,
//     transient error reported),
//   * probabilistic transient write errors (nothing lands),
//   * read bit-flips (the read "succeeds", one bit is wrong — the store's
//     CRC taxonomy must catch it),
//   * a crash point: mutating op N throws CrashPoint ("stop the world
//     here"), optionally tearing the in-flight append first. After the
//     crash every subsequent operation throws too, and open files are
//     abandoned (buffered bytes lost), like a kill -9.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "io/env.h"

namespace hdd::obs {
class Counter;
class Registry;
}  // namespace hdd::obs

namespace hdd::io {

struct FaultPlan {
  static constexpr std::uint64_t kNever = 0;
  static constexpr std::uint64_t kNoBudget =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t seed = 0;

  // Fail the Nth fsync (1-based); kNever disables.
  std::uint64_t fail_fsync_n = kNever;
  ErrorClass fsync_error = ErrorClass::kTransient;

  // Inject ENOSPC once this many appended bytes have been written; the
  // append that crosses the budget lands only its in-budget prefix.
  std::uint64_t enospc_after_bytes = kNoBudget;

  // Per-append probability that only a prefix lands (transient error).
  double short_write_prob = 0.0;
  // Per-append probability of a transient write error (nothing lands).
  double write_error_prob = 0.0;
  // Per-read probability of flipping one bit of the returned data.
  double read_flip_prob = 0.0;

  // Crash (throw CrashPoint) on the Nth mutating op (1-based); kNever
  // disables. When the op is an append and torn_crash is set, a seeded
  // prefix of the in-flight data reaches the file first.
  std::uint64_t crash_at_op = kNever;
  bool torn_crash = true;

  // A randomized schedule for the property harness: mixes a crash point
  // with occasional fsync failures, short writes and read flips, all
  // derived from the seed.
  static FaultPlan random(std::uint64_t seed, std::uint64_t max_ops);
};

class FaultEnv final : public EnvWrapper {
 public:
  // nullptr metrics = obs::Registry::global(). The registry must outlive
  // the env; so must `base`.
  FaultEnv(Env& base, FaultPlan plan, obs::Registry* metrics = nullptr);

  const FaultPlan& plan() const { return plan_; }

  // Mutating operations observed so far (the crash clock).
  std::uint64_t ops() const { return state_->ops.load(); }
  std::uint64_t faults_injected() const { return state_->faults.load(); }
  bool crashed() const { return state_->crashed.load(); }
  // Deterministic record of every injected fault, in op order — the
  // reproducibility acceptance artifact ("same seed, same sequence").
  std::vector<std::string> fault_log() const;

  IoStatus new_append_file(const std::string& path, bool truncate,
                           std::unique_ptr<File>& out) override;
  IoStatus read_file(const std::string& path, std::string& out) const override;
  IoStatus read_prefix(const std::string& path, std::size_t n,
                       std::string& out) const override;
  IoStatus create_dirs(const std::string& dir) override;
  IoStatus rename_file(const std::string& from, const std::string& to) override;
  IoStatus remove_file(const std::string& path) override;
  IoStatus resize_file(const std::string& path, std::uint64_t size) override;
  IoStatus sync_dir(const std::string& dir) override;

  // Shared by the env and every file it opened; files outliving the env
  // (store teardown order) keep the state alive. Public so the FaultFile
  // implementation (internal to fault_env.cpp) can drive it.
  struct State {
    FaultPlan plan;
    CounterRng rng;
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> bytes_appended{0};
    std::atomic<std::uint64_t> fsyncs{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<bool> crashed{false};
    obs::Counter* m_faults = nullptr;
    mutable Mutex log_mutex{lock_order::Rank::kFaultLog, "fault-log"};
    std::vector<std::string> log HDD_GUARDED_BY(log_mutex);

    explicit State(FaultPlan p) : plan(p), rng(p.seed) {}

    // Advances the op clock, firing the crash point when due. Returns the
    // op index (1-based).
    std::uint64_t tick(const char* what);
    void record_fault(std::uint64_t op, const std::string& what);
    [[noreturn]] void crash(std::uint64_t op);
    void check_alive() const;
  };

 private:
  void maybe_flip(const std::string& path, std::string& data) const;

  std::shared_ptr<State> state_;
  FaultPlan plan_;
};

}  // namespace hdd::io
