#include "io/retry.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdd::io {

Retryer::Retryer(RetryPolicy policy, obs::Registry* metrics)
    : policy_(policy) {
  HDD_REQUIRE(policy_.max_attempts >= 1, "retry max_attempts must be >= 1");
  HDD_REQUIRE(policy_.multiplier >= 1.0, "retry multiplier must be >= 1");
  obs::Registry& reg =
      metrics != nullptr ? *metrics : obs::Registry::global();
  retries_ = &reg.counter("hdd_io_retries_total",
                          "I/O operations retried after a transient error.");
}

IoStatus Retryer::run(const char* what,
                      const std::function<IoStatus()>& op) const {
  auto backoff = policy_.initial_backoff;
  IoStatus status;
  for (int attempt = 1;; ++attempt) {
    const std::uint64_t t0 = obs::trace_now_ticks();
    status = op();
    if (status.ok() || !status.transient() ||
        attempt >= policy_.max_attempts) {
      return status;
    }
    // A transiently failed attempt that will be retried: make it visible
    // as a child span of whatever store operation is running, so
    // fault-injected retries show up in request traces.
    obs::record_child_span("io.retry", t0, obs::trace_now_ticks(), "attempt",
                           static_cast<std::uint64_t>(attempt));
    retries_->inc();
    log_message(LogLevel::kDebug,
                std::string("io retry: ") + what + " attempt " +
                    std::to_string(attempt) + " failed transiently (" +
                    status.message + "), backing off " +
                    std::to_string(backoff.count()) + "us");
    if (policy_.sleep && backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
    }
    backoff = std::min(
        policy_.max_backoff,
        std::chrono::microseconds(static_cast<long long>(
            static_cast<double>(backoff.count()) * policy_.multiplier)));
  }
}

}  // namespace hdd::io
