#include "io/shutdown.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace hdd::io {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<bool> g_installed{false};
int g_pipe[2] = {-1, -1};

void wake() {
  const char b = 1;
  // Best effort: EAGAIN just means the pipe already holds a wake byte.
  [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &b, 1);
}

void on_signal(int) {
  // Async-signal-safe: one store, one write.
  g_requested.store(true, std::memory_order_release);
  wake();
}

}  // namespace

void install_shutdown_handlers() {
  if (g_installed.exchange(true)) return;
  if (::pipe(g_pipe) == 0) {
    for (const int fd : g_pipe) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  } else {
    g_pipe[0] = g_pipe[1] = -1;
  }
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking accepts/reads return EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_requested.load(std::memory_order_acquire);
}

int shutdown_wake_fd() { return g_pipe[0]; }

void request_shutdown() {
  g_requested.store(true, std::memory_order_release);
  if (g_pipe[1] >= 0) wake();
}

void reset_shutdown_for_tests() {
  g_requested.store(false, std::memory_order_release);
  if (g_pipe[0] >= 0) {
    char buf[16];
    while (::read(g_pipe[0], buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace hdd::io
