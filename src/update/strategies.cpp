#include "update/strategies.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "store/telemetry_store.h"

namespace hdd::update {

GeneratorTelemetrySource::GeneratorTelemetrySource(
    const sim::FleetConfig& fleet)
    : fleet_(&fleet),
      gen_(fleet.families.front().profile, fleet.seed, 0) {
  HDD_REQUIRE(fleet.families.size() == 1,
              "GeneratorTelemetrySource expects exactly one family");
}

std::vector<smart::DriveRecord> GeneratorTelemetrySource::good_window(
    int from_week, int to_week) const {
  const sim::FamilySpec& fam = fleet_->families.front();
  const std::int64_t horizon =
      static_cast<std::int64_t>(fleet_->observation_weeks) * 168;
  std::vector<smart::DriveRecord> out(fam.n_good);
  ThreadPool::global().parallel_for(0, fam.n_good, [&](std::size_t i) {
    const auto latent = gen_.make_latent(i, /*failed=*/false, horizon);
    out[i] = gen_.materialize(latent,
                              static_cast<std::int64_t>(from_week) * 168,
                              static_cast<std::int64_t>(to_week) * 168 - 1,
                              fleet_->sample_interval_hours);
    out[i].serial = fam.profile.name + "-G" + std::to_string(i);
  });
  return out;
}

StoreTelemetrySource::StoreTelemetrySource(const store::TelemetryStore& store)
    : store_(&store) {}

std::vector<smart::DriveRecord> StoreTelemetrySource::good_window(
    int from_week, int to_week) const {
  const std::size_t n = store_->drive_count();
  std::vector<smart::DriveRecord> out(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    out[id].serial = store_->drive(id).serial;
    out[id].samples =
        store_->read_drive(id, static_cast<std::int64_t>(from_week) * 168,
                           static_cast<std::int64_t>(to_week) * 168 - 1);
  }
  return out;
}

std::size_t ingest_good_telemetry(const sim::FleetConfig& fleet,
                                  store::TelemetryStore& store) {
  HDD_REQUIRE(fleet.families.size() == 1,
              "ingest_good_telemetry expects exactly one family");
  const sim::FamilySpec& fam = fleet.families.front();
  const sim::TraceGenerator gen(fam.profile, fleet.seed, 0);
  const std::int64_t horizon =
      static_cast<std::int64_t>(fleet.observation_weeks) * 168;
  std::vector<smart::DriveRecord> drives(fam.n_good);
  ThreadPool::global().parallel_for(0, fam.n_good, [&](std::size_t i) {
    const auto latent = gen.make_latent(i, /*failed=*/false, horizon);
    drives[i] =
        gen.materialize(latent, 0, horizon - 1, fleet.sample_interval_hours);
    drives[i].serial = fam.profile.name + "-G" + std::to_string(i);
  });
  std::size_t appended = 0;
  for (const smart::DriveRecord& d : drives) {
    const std::uint32_t id = store.register_drive(d.serial);
    for (const smart::Sample& s : d.samples) {
      if (store.drive(id).last_hour >= s.hour) continue;  // idempotent re-run
      store.append(id, s);
      ++appended;
    }
  }
  store.flush();
  return appended;
}

namespace {

// One implementation of the strategy stepping, shared with the live
// pipeline (pipeline/scheduler.h): the weeks a strategy trains on before
// predicting `test_week`, as [from, to).
std::pair<int, int> training_range(const LongTermConfig& config,
                                   int test_week) {
  return pipeline::training_range(config.strategy, config.replace_cycle_weeks,
                                  test_week);
}

}  // namespace

std::vector<WeeklyResult> simulate_long_term(const sim::FleetConfig& fleet,
                                             const ModelTrainer& trainer,
                                             const LongTermConfig& config) {
  return simulate_long_term(fleet, trainer, config,
                            GeneratorTelemetrySource(fleet));
}

std::vector<WeeklyResult> simulate_long_term(const sim::FleetConfig& fleet,
                                             const ModelTrainer& trainer,
                                             const LongTermConfig& config,
                                             const TelemetrySource& source) {
  HDD_REQUIRE(fleet.families.size() == 1,
              "simulate_long_term expects exactly one family");
  HDD_REQUIRE(fleet.observation_weeks >= 2, "need at least two weeks");
  HDD_REQUIRE(static_cast<bool>(trainer), "null trainer");
  if (config.strategy == Strategy::kReplacing) {
    HDD_REQUIRE(config.replace_cycle_weeks >= 1,
                "replace cycle must be >= 1 week");
  }

  const sim::FamilySpec& fam = fleet.families.front();
  const sim::TraceGenerator gen(fam.profile, fleet.seed, 0);
  const std::int64_t horizon =
      static_cast<std::int64_t>(fleet.observation_weeks) * 168;
  const std::int64_t failed_span =
      static_cast<std::int64_t>(fleet.failed_record_days) * 24;

  // Failed drives: materialized once, split once, shared by all weeks.
  std::vector<smart::DriveRecord> failed(fam.n_failed);
  ThreadPool::global().parallel_for(0, fam.n_failed, [&](std::size_t i) {
    const auto latent = gen.make_latent(i, /*failed=*/true, horizon);
    failed[i] = gen.materialize(
        latent, std::max<std::int64_t>(0, latent.fail_hour - failed_span),
        latent.fail_hour, fleet.sample_interval_hours);
    failed[i].serial = fam.profile.name + "-F" + std::to_string(i);
  });

  Rng rng(config.seed);
  const auto perm = rng.permutation(failed.size());
  const auto n_train_failed = static_cast<std::size_t>(std::round(
      static_cast<double>(failed.size()) * config.train_fraction));

  std::vector<WeeklyResult> results;
  eval::SampleModel model;
  std::pair<int, int> trained_range{-1, -1};

  for (int week = 2; week <= fleet.observation_weeks; ++week) {
    const auto range = training_range(config, week);
    if (range != trained_range) {
      // (Re)train on the strategy's window.
      data::DriveDataset train_ds;
      train_ds.family_names = {fam.profile.name};
      data::DatasetSplit split;
      auto goods = source.good_window(range.first, range.second);
      for (auto& g : goods) {
        if (g.empty()) continue;
        split.good_drives.push_back(train_ds.drives.size());
        split.good_test_begin.push_back(g.samples.size());  // all train
        train_ds.drives.push_back(std::move(g));
      }
      for (std::size_t k = 0; k < n_train_failed; ++k) {
        split.train_failed.push_back(train_ds.drives.size());
        train_ds.drives.push_back(failed[perm[k]]);
      }

      data::TrainingConfig tc = config.training;
      // Keep the per-week good sampling density constant as windows grow.
      tc.good_samples_per_drive = config.training.good_samples_per_drive *
                                  (range.second - range.first);
      const auto matrix = data::build_training_matrix(train_ds, split, tc);
      model = trainer(matrix);
      trained_range = range;
      log_debug() << "trained " << strategy_name(config.strategy)
                  << " model on weeks [" << range.first << ","
                  << range.second << ") with " << matrix.rows() << " rows";
    }

    // Test on week `week` (1-based: hours [(week-1)*168, week*168)).
    data::DriveDataset test_ds;
    test_ds.family_names = {fam.profile.name};
    data::DatasetSplit split;
    auto goods = source.good_window(week - 1, week);
    for (auto& g : goods) {
      if (g.empty()) continue;
      split.good_drives.push_back(test_ds.drives.size());
      split.good_test_begin.push_back(0);  // the whole week is test data
      test_ds.drives.push_back(std::move(g));
    }
    for (std::size_t k = n_train_failed; k < failed.size(); ++k) {
      if (failed[perm[k]].empty()) continue;
      split.test_failed.push_back(test_ds.drives.size());
      test_ds.drives.push_back(failed[perm[k]]);
    }

    const auto result = eval::evaluate(test_ds, split, config.training.features,
                                       model, config.vote);
    results.push_back({week, result.far(), result.fdr()});
  }
  return results;
}

}  // namespace hdd::update
