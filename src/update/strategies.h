// Model-updating strategies over a multi-week horizon (Section V-B3).
//
// Three strategies are simulated against eight weeks of telemetry:
//   fixed        — train once on week 1, never update;
//   accumulation — each week, retrain on all good samples seen so far;
//   replacing    — every c weeks, retrain using only the last cycle's good
//                  samples and use that model for the next cycle.
//
// Failed drives are shared across all strategies (the paper uses the same
// failed sample set throughout); good telemetry for each week is
// materialized on demand from the deterministic generator, which is what
// makes the eight-week horizon affordable in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/training.h"
#include "eval/detection.h"
#include "sim/generator.h"

namespace hdd::update {

enum class Strategy { kFixed, kAccumulation, kReplacing };

const char* strategy_name(Strategy s);

// Trains a sample-level model from a weighted matrix. Lets the simulation
// drive CT, RT, BP ANN, forests... uniformly.
using ModelTrainer =
    std::function<eval::SampleModel(const data::DataMatrix&)>;

struct LongTermConfig {
  Strategy strategy = Strategy::kFixed;
  int replace_cycle_weeks = 1;  // c, for kReplacing

  data::TrainingConfig training;  // features, windows, weights
  eval::VoteConfig vote;          // detection parameters (11 voters)

  double train_fraction = 0.7;    // failed-drive split
  std::uint64_t seed = 31;
};

struct WeeklyResult {
  int week = 0;  // 1-based test week (2..8 in the paper's figures)
  double far = 0.0;
  double fdr = 0.0;
};

// Runs the long-term simulation for one drive family (config.families must
// contain exactly one entry) and returns one result per test week
// (weeks 2..observation_weeks).
std::vector<WeeklyResult> simulate_long_term(const sim::FleetConfig& fleet,
                                             const ModelTrainer& trainer,
                                             const LongTermConfig& config);

}  // namespace hdd::update
