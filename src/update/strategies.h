// Model-updating strategies over a multi-week horizon (Section V-B3).
//
// Three strategies are simulated against eight weeks of telemetry:
//   fixed        — train once on week 1, never update;
//   accumulation — each week, retrain on all good samples seen so far;
//   replacing    — every c weeks, retrain using only the last cycle's good
//                  samples and use that model for the next cycle.
//
// Failed drives are shared across all strategies (the paper uses the same
// failed sample set throughout); good telemetry for each week is
// materialized on demand from the deterministic generator, which is what
// makes the eight-week horizon affordable in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/training.h"
#include "eval/detection.h"
#include "pipeline/scheduler.h"
#include "sim/generator.h"

namespace hdd::store {
class TelemetryStore;
}

namespace hdd::update {

// The strategy enum and its week-stepping logic live in pipeline/ (the live
// background retrain loop shares them); this simulation is the synchronous-
// clock client of the same implementation.
using Strategy = pipeline::Strategy;
using pipeline::strategy_name;

// Trains a sample-level model from a weighted matrix. Lets the simulation
// drive CT, RT, BP ANN, forests... uniformly.
using ModelTrainer =
    std::function<eval::SampleModel(const data::DataMatrix&)>;

struct LongTermConfig {
  Strategy strategy = Strategy::kFixed;
  int replace_cycle_weeks = 1;  // c, for kReplacing

  data::TrainingConfig training;  // features, windows, weights
  eval::VoteConfig vote;          // detection parameters (11 voters)

  double train_fraction = 0.7;    // failed-drive split
  std::uint64_t seed = 31;
};

struct WeeklyResult {
  int week = 0;  // 1-based test week (2..8 in the paper's figures)
  double far = 0.0;
  double fdr = 0.0;
};

// Supplies good-drive telemetry windows to the long-term simulation.
// The default source materializes windows from the deterministic generator;
// the store-backed source reads accumulated history from a TelemetryStore,
// which is how a deployed monitoring node would retrain (Section V-B3 with
// real collected telemetry instead of regeneration).
class TelemetrySource {
 public:
  virtual ~TelemetrySource() = default;

  // All good drives of the (single) family, each holding its samples with
  // hour in [from_week*168, to_week*168), chronological on the fleet's
  // sampling grid. Drives with no samples in the window come back empty.
  virtual std::vector<smart::DriveRecord> good_window(int from_week,
                                                      int to_week) const = 0;
};

// Materializes windows on demand from the trace generator (the memory-cheap
// default used by the paper-reproduction runs).
class GeneratorTelemetrySource final : public TelemetrySource {
 public:
  // `fleet` must outlive the source and hold exactly one family.
  explicit GeneratorTelemetrySource(const sim::FleetConfig& fleet);

  std::vector<smart::DriveRecord> good_window(int from_week,
                                              int to_week) const override;

 private:
  const sim::FleetConfig* fleet_;
  sim::TraceGenerator gen_;
};

// Reads windows back from a TelemetryStore previously filled by
// ingest_good_telemetry (or by live journaled monitoring). Because the
// generator aligns samples to the global grid, windows read from a
// full-horizon ingest are byte-identical to regenerated ones.
class StoreTelemetrySource final : public TelemetrySource {
 public:
  // `store` must outlive the source; every drive in it is treated as good.
  explicit StoreTelemetrySource(const store::TelemetryStore& store);

  std::vector<smart::DriveRecord> good_window(int from_week,
                                              int to_week) const override;

 private:
  const store::TelemetryStore* store_;
};

// Materializes every good drive of the (single) family over the whole
// observation horizon and appends its samples to `store`. Idempotent:
// hours the store already holds for a drive are skipped. Returns the number
// of samples appended.
std::size_t ingest_good_telemetry(const sim::FleetConfig& fleet,
                                  store::TelemetryStore& store);

// Runs the long-term simulation for one drive family (config.families must
// contain exactly one entry) and returns one result per test week
// (weeks 2..observation_weeks). Good telemetry comes from `source`.
std::vector<WeeklyResult> simulate_long_term(const sim::FleetConfig& fleet,
                                             const ModelTrainer& trainer,
                                             const LongTermConfig& config,
                                             const TelemetrySource& source);

// Convenience overload: generator-backed telemetry.
std::vector<WeeklyResult> simulate_long_term(const sim::FleetConfig& fleet,
                                             const ModelTrainer& trainer,
                                             const LongTermConfig& config);

}  // namespace hdd::update
