// Wilcoxon rank-sum failure-warning detector — Hughes et al. [8]: compare a
// drive's recent attribute values against a stored reference of known-good
// samples; warn when the rank-sum statistic is significant ("60% detection
// at 0.5% FAR" in their study). Implements the OR-ed single-variate
// strategy: each feature is tested independently and any significant
// feature raises the warning.
//
// Unlike the sample-level models, this detector is inherently windowed
// (it tests a set of recent samples), so it exposes a drive-level detect()
// rather than the SampleModel interface.
#pragma once

#include <cstdint>
#include <vector>

#include "data/training.h"
#include "eval/detection.h"
#include "smart/features.h"

namespace hdd::baselines {

struct RankSumConfig {
  // Number of recent samples tested at each time point.
  int window_samples = 24;
  // Reference good samples stored per feature.
  int reference_size = 2000;
  // One-sided critical value on the z statistic: warn when the window
  // ranks significantly *lower* than the reference (health dropping).
  // Note this is far beyond the textbook 3.1 (p < 1e-3): with a pooled
  // reference over a heterogeneous fleet, a healthy drive whose personal
  // baseline sits a little low ranks "significantly" low at every time
  // point, so the usable critical region starts much further out — a real
  // weakness of the pooled rank-sum approach that the comparison bench
  // makes visible.
  double z_critical = 16.0;
  std::uint64_t seed = 1001;

  void validate() const;
};

class RankSumDetector {
 public:
  RankSumDetector() = default;

  // Stores a reference drawn from the good rows of the matrix.
  void fit(const data::DataMatrix& m, const smart::FeatureSet& features,
           const RankSumConfig& config);

  bool trained() const { return !reference_.empty(); }

  // Walks the record from `begin`; the first time point where any feature's
  // window tests significant fixes the alarm.
  eval::DriveOutcome detect(const smart::DriveRecord& drive,
                            std::size_t begin = 0) const;

  // Evaluates the whole test side of a split (drive-level FDR/FAR/TIA).
  eval::EvalResult evaluate(const data::DriveDataset& dataset,
                            const data::DatasetSplit& split) const;

 private:
  smart::FeatureSet features_;
  RankSumConfig config_;
  // reference_[f] is the sorted reference sample for feature f.
  std::vector<std::vector<double>> reference_;
};

}  // namespace hdd::baselines
