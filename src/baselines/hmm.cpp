#include "baselines/hmm.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace hdd::baselines {

void HmmConfig::validate() const {
  HDD_REQUIRE(states >= 1, "states must be >= 1");
  HDD_REQUIRE(baum_welch_iters >= 1, "baum_welch_iters must be >= 1");
  HDD_REQUIRE(tol >= 0.0, "tol must be non-negative");
  HDD_REQUIRE(min_variance > 0.0, "min_variance must be positive");
}

namespace {

double gaussian_pdf(double x, double mean, double var) {
  const double d = x - mean;
  return std::exp(-0.5 * d * d / var) /
         std::sqrt(2.0 * std::numbers::pi * var);
}

// One sequence's scaled forward/backward pass and accumulators.
struct FbResult {
  double log_likelihood = 0.0;
  // gamma[t*K + i], xi_sum[i*K + j] accumulated over t.
  std::vector<double> gamma;
  std::vector<double> xi_sum;
};

}  // namespace

void GaussianHmm::fit(const std::vector<std::vector<double>>& sequences,
                      const HmmConfig& config) {
  config.validate();
  const auto k = static_cast<std::size_t>(config.states);

  // Usable sequences and the pooled observation stats for initialization.
  std::vector<const std::vector<double>*> seqs;
  double sum = 0.0, sum2 = 0.0;
  std::size_t count = 0;
  for (const auto& s : sequences) {
    if (s.size() < 2) continue;
    seqs.push_back(&s);
    for (double v : s) {
      sum += v;
      sum2 += v * v;
      ++count;
    }
  }
  HDD_REQUIRE(!seqs.empty(), "no usable sequences (need length >= 2)");
  const double pooled_mean = sum / static_cast<double>(count);
  const double pooled_var = std::max(
      sum2 / static_cast<double>(count) - pooled_mean * pooled_mean,
      config.min_variance);
  const double pooled_sd = std::sqrt(pooled_var);

  // Init: means spread across the observed range, uniform-ish transitions
  // with a slight self-transition bias, small random perturbations so
  // states are not symmetric.
  Rng rng(config.seed);
  means_.resize(k);
  vars_.assign(k, pooled_var);
  for (std::size_t i = 0; i < k; ++i) {
    const double frac = k == 1 ? 0.5
                               : static_cast<double>(i) /
                                     static_cast<double>(k - 1);
    means_[i] = pooled_mean + (frac - 0.5) * 2.0 * pooled_sd +
                rng.normal(0.0, 0.05 * pooled_sd);
  }
  trans_.assign(k * k, 0.0);
  init_.assign(k, 1.0 / static_cast<double>(k));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      trans_[i * k + j] = (i == j ? 0.8 : 0.2 / std::max<double>(1.0, k - 1));
    }
  }

  double prev_mean_ll = -1e300;
  std::vector<double> alpha, beta, scale, b;
  for (int iter = 0; iter < config.baum_welch_iters; ++iter) {
    // Accumulators.
    std::vector<double> new_init(k, 1e-12);
    std::vector<double> xi(k * k, 1e-12);
    std::vector<double> gamma_sum(k, 1e-12);
    std::vector<double> mean_acc(k, 0.0), var_acc(k, 0.0);
    double total_ll = 0.0;
    std::size_t total_obs = 0;

    for (const auto* sp : seqs) {
      const auto& seq = *sp;
      const std::size_t n = seq.size();
      alpha.assign(n * k, 0.0);
      beta.assign(n * k, 0.0);
      scale.assign(n, 0.0);
      b.assign(n * k, 0.0);
      for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t i = 0; i < k; ++i) {
          b[t * k + i] =
              std::max(gaussian_pdf(seq[t], means_[i], vars_[i]), 1e-300);
        }
      }
      // Scaled forward.
      double norm = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        alpha[i] = init_[i] * b[i];
        norm += alpha[i];
      }
      scale[0] = std::max(norm, 1e-300);
      for (std::size_t i = 0; i < k; ++i) alpha[i] /= scale[0];
      for (std::size_t t = 1; t < n; ++t) {
        norm = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          double a = 0.0;
          for (std::size_t i = 0; i < k; ++i) {
            a += alpha[(t - 1) * k + i] * trans_[i * k + j];
          }
          a *= b[t * k + j];
          alpha[t * k + j] = a;
          norm += a;
        }
        scale[t] = std::max(norm, 1e-300);
        for (std::size_t j = 0; j < k; ++j) alpha[t * k + j] /= scale[t];
      }
      // Scaled backward.
      for (std::size_t i = 0; i < k; ++i) beta[(n - 1) * k + i] = 1.0;
      for (std::size_t t = n - 1; t-- > 0;) {
        for (std::size_t i = 0; i < k; ++i) {
          double acc = 0.0;
          for (std::size_t j = 0; j < k; ++j) {
            acc += trans_[i * k + j] * b[(t + 1) * k + j] *
                   beta[(t + 1) * k + j];
          }
          beta[t * k + i] = acc / scale[t + 1];
        }
      }
      // Accumulate statistics.
      for (std::size_t t = 0; t < n; ++t) {
        double gnorm = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
          gnorm += alpha[t * k + i] * beta[t * k + i];
        }
        gnorm = std::max(gnorm, 1e-300);
        for (std::size_t i = 0; i < k; ++i) {
          const double g = alpha[t * k + i] * beta[t * k + i] / gnorm;
          if (t == 0) new_init[i] += g;
          gamma_sum[i] += g;
          mean_acc[i] += g * seq[t];
          var_acc[i] += g * seq[t] * seq[t];
        }
      }
      for (std::size_t t = 0; t + 1 < n; ++t) {
        double xnorm = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
          for (std::size_t j = 0; j < k; ++j) {
            xnorm += alpha[t * k + i] * trans_[i * k + j] *
                     b[(t + 1) * k + j] * beta[(t + 1) * k + j];
          }
        }
        xnorm = std::max(xnorm, 1e-300);
        for (std::size_t i = 0; i < k; ++i) {
          for (std::size_t j = 0; j < k; ++j) {
            xi[i * k + j] += alpha[t * k + i] * trans_[i * k + j] *
                             b[(t + 1) * k + j] * beta[(t + 1) * k + j] /
                             xnorm;
          }
        }
      }
      for (std::size_t t = 0; t < n; ++t) total_ll += std::log(scale[t]);
      total_obs += n;
    }

    // M step.
    double init_norm = 0.0;
    for (double v : new_init) init_norm += v;
    for (std::size_t i = 0; i < k; ++i) init_[i] = new_init[i] / init_norm;
    for (std::size_t i = 0; i < k; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < k; ++j) row += xi[i * k + j];
      for (std::size_t j = 0; j < k; ++j) trans_[i * k + j] = xi[i * k + j] / row;
      means_[i] = mean_acc[i] / gamma_sum[i];
      vars_[i] = std::max(
          var_acc[i] / gamma_sum[i] - means_[i] * means_[i],
          config.min_variance);
    }

    const double mean_ll = total_ll / static_cast<double>(total_obs);
    if (config.tol > 0.0 && mean_ll - prev_mean_ll < config.tol) break;
    prev_mean_ll = mean_ll;
  }
}

double GaussianHmm::log_likelihood(std::span<const double> seq) const {
  HDD_REQUIRE(trained(), "log_likelihood on an untrained HMM");
  HDD_REQUIRE(!seq.empty(), "empty sequence");
  const std::size_t k = means_.size();
  std::vector<double> alpha(k), next(k);
  double ll = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    alpha[i] = init_[i] *
               std::max(gaussian_pdf(seq[0], means_[i], vars_[i]), 1e-300);
  }
  double norm = 0.0;
  for (double v : alpha) norm += v;
  norm = std::max(norm, 1e-300);
  ll += std::log(norm);
  for (double& v : alpha) v /= norm;
  for (std::size_t t = 1; t < seq.size(); ++t) {
    for (std::size_t j = 0; j < k; ++j) {
      double a = 0.0;
      for (std::size_t i = 0; i < k; ++i) a += alpha[i] * trans_[i * k + j];
      next[j] = a * std::max(gaussian_pdf(seq[t], means_[j], vars_[j]),
                             1e-300);
    }
    norm = 0.0;
    for (double v : next) norm += v;
    norm = std::max(norm, 1e-300);
    ll += std::log(norm);
    for (std::size_t j = 0; j < k; ++j) alpha[j] = next[j] / norm;
  }
  return ll;
}

double GaussianHmm::mean_log_likelihood(std::span<const double> seq) const {
  return log_likelihood(seq) / static_cast<double>(seq.size());
}

void HmmDetectorConfig::validate() const {
  HDD_REQUIRE(window_samples >= 3, "window_samples must be >= 3");
  HDD_REQUIRE(failed_window_hours > 0, "failed_window_hours must be > 0");
  HDD_REQUIRE(max_training_windows >= 10, "need some training windows");
  hmm.validate();
}

namespace {

// Non-overlapping windows of `w` consecutive values from a series.
void chop_windows(const std::vector<double>& series, std::size_t w,
                  std::vector<std::vector<double>>& out, std::size_t limit) {
  for (std::size_t start = 0; start + w <= series.size() && out.size() < limit;
       start += w) {
    out.emplace_back(series.begin() + static_cast<std::ptrdiff_t>(start),
                     series.begin() + static_cast<std::ptrdiff_t>(start + w));
  }
}

std::vector<double> attribute_series(const smart::DriveRecord& d,
                                     smart::Attr attr, std::size_t begin,
                                     std::size_t end) {
  std::vector<double> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    out.push_back(d.samples[i].value(attr));
  }
  return out;
}

}  // namespace

void HmmDetector::fit(const data::DriveDataset& dataset,
                      const data::DatasetSplit& split,
                      const HmmDetectorConfig& config) {
  config.validate();
  config_ = config;
  const auto w = static_cast<std::size_t>(config.window_samples);
  const auto limit = static_cast<std::size_t>(config.max_training_windows);

  // Good windows: from each good drive's training period.
  std::vector<std::vector<double>> good_windows;
  for (std::size_t kdx = 0; kdx < split.good_drives.size(); ++kdx) {
    if (good_windows.size() >= limit) break;
    const auto& d = dataset.drives[split.good_drives[kdx]];
    const auto series = attribute_series(d, config.attribute, 0,
                                         split.good_test_begin[kdx]);
    // One window per drive spreads coverage across the fleet.
    std::vector<std::vector<double>> one;
    chop_windows(series, w, one, 1);
    for (auto& win : one) good_windows.push_back(std::move(win));
  }

  // Failure windows: the last `failed_window_hours` of each training
  // failed drive.
  std::vector<std::vector<double>> failed_windows;
  for (std::size_t di : split.train_failed) {
    if (failed_windows.size() >= limit) break;
    const auto& d = dataset.drives[di];
    if (d.empty()) continue;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < d.samples.size(); ++i) {
      if (d.fail_hour - d.samples[i].hour <= config.failed_window_hours) {
        begin = i;
        break;
      }
    }
    const auto series =
        attribute_series(d, config.attribute, begin, d.samples.size());
    chop_windows(series, w, failed_windows, failed_windows.size() + 4);
  }

  good_.fit(good_windows, config.hmm);
  failed_.fit(failed_windows, config.hmm);
}

eval::DriveOutcome HmmDetector::detect(const smart::DriveRecord& drive,
                                       std::size_t begin) const {
  HDD_REQUIRE(trained(), "detect on an untrained HmmDetector");
  eval::DriveOutcome outcome;
  const auto w = static_cast<std::size_t>(config_.window_samples);
  const std::size_t n = drive.samples.size();
  if (begin + w > n) return outcome;

  std::vector<double> window(w);
  for (std::size_t end = begin + w; end <= n; ++end) {
    for (std::size_t i = 0; i < w; ++i) {
      window[i] = drive.samples[end - w + i].value(config_.attribute);
    }
    const double llr = failed_.mean_log_likelihood(window) -
                       good_.mean_log_likelihood(window);
    if (llr > config_.llr_margin) {
      outcome.alarmed = true;
      outcome.alarm_hour = drive.samples[end - 1].hour;
      return outcome;
    }
  }
  return outcome;
}

eval::EvalResult HmmDetector::evaluate(const data::DriveDataset& dataset,
                                       const data::DatasetSplit& split) const {
  struct Job {
    std::size_t drive;
    std::size_t begin;
  };
  std::vector<Job> jobs;
  for (std::size_t kdx = 0; kdx < split.good_drives.size(); ++kdx) {
    if (split.good_test_begin[kdx] >=
        dataset.drives[split.good_drives[kdx]].samples.size()) {
      continue;
    }
    jobs.push_back({split.good_drives[kdx], split.good_test_begin[kdx]});
  }
  for (std::size_t di : split.test_failed) {
    if (!dataset.drives[di].empty()) jobs.push_back({di, 0});
  }

  std::vector<eval::DriveOutcome> outcomes(jobs.size());
  ThreadPool::global().parallel_for(0, jobs.size(), [&](std::size_t j) {
    outcomes[j] = detect(dataset.drives[jobs[j].drive], jobs[j].begin);
  });

  eval::EvalResult r;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& d = dataset.drives[jobs[j].drive];
    if (d.failed) {
      ++r.n_failed;
      if (outcomes[j].alarmed) {
        ++r.detections;
        r.tia_hours.push_back(
            static_cast<double>(d.fail_hour - outcomes[j].alarm_hour));
      }
    } else {
      ++r.n_good;
      if (outcomes[j].alarmed) ++r.false_alarms;
    }
  }
  return r;
}

}  // namespace hdd::baselines
