#include "baselines/threshold.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace hdd::baselines {

void ThresholdConfig::validate() const {
  HDD_REQUIRE(quantile > 0.0 && quantile < 0.5,
              "quantile must be in (0, 0.5)");
  HDD_REQUIRE(margin_iqr >= 0.0, "margin_iqr must be non-negative");
}

void ThresholdDetector::fit(const data::DataMatrix& m,
                            const ThresholdConfig& config) {
  config.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit thresholds on an empty matrix");
  const auto cols = static_cast<std::size_t>(m.cols());

  increasing_.assign(cols, false);
  for (int f : config.increasing_features) {
    HDD_REQUIRE(f >= 0 && f < m.cols(), "increasing feature out of range");
    increasing_[static_cast<std::size_t>(f)] = true;
  }

  lower_.assign(cols, -std::numeric_limits<float>::infinity());
  upper_.assign(cols, std::numeric_limits<float>::infinity());

  std::vector<float> column;
  for (std::size_t f = 0; f < cols; ++f) {
    column.clear();
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (m.target(r) > 0.0f) column.push_back(m.row(r)[f]);
    }
    HDD_REQUIRE(!column.empty(), "no good rows to learn thresholds from");
    std::sort(column.begin(), column.end());
    const auto n = column.size();
    const auto idx = static_cast<std::size_t>(
        config.quantile * static_cast<double>(n - 1));
    const float iqr = column[n * 3 / 4] - column[n / 4];
    const float margin =
        std::max(static_cast<float>(config.margin_iqr) * iqr,
                 static_cast<float>(config.margin_abs));
    if (increasing_[f]) {
      upper_[f] = column[n - 1 - idx] + margin;
    } else {
      lower_[f] = column[idx] - margin;
    }
  }
}

double ThresholdDetector::predict(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "predict on an untrained ThresholdDetector");
  HDD_ASSERT(x.size() == lower_.size());
  for (std::size_t f = 0; f < x.size(); ++f) {
    if (x[f] < lower_[f] || x[f] > upper_[f]) return -1.0;
  }
  return 1.0;
}

}  // namespace hdd::baselines
