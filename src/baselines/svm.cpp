#include "baselines/svm.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace hdd::baselines {

void SvmConfig::validate() const {
  HDD_REQUIRE(lambda > 0.0, "lambda must be positive");
  HDD_REQUIRE(epochs >= 1, "epochs must be >= 1");
}

void LinearSvm::fit(const data::DataMatrix& m, const SvmConfig& config) {
  config.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit an SVM on an empty matrix");
  const auto d = static_cast<std::size_t>(m.cols());

  // Standardize (hinge-loss SGD on raw SMART scales would not converge).
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t f = 0; f < d; ++f) mean_[f] += row[f];
  }
  for (double& v : mean_) v /= static_cast<double>(m.rows());
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t f = 0; f < d; ++f) {
      const double diff = row[f] - mean_[f];
      var[f] += diff * diff;
    }
  }
  for (std::size_t f = 0; f < d; ++f) {
    const double sd = std::sqrt(var[f] / static_cast<double>(m.rows()));
    scale_[f] = sd > 1e-9 ? 1.0 / sd : 0.0;
  }

  // Mean sample weight -> 1 so lambda keeps its meaning under reweighting.
  double mean_w = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) mean_w += m.weight(r);
  mean_w /= static_cast<double>(m.rows());
  const double inv_mean_w = mean_w > 0.0 ? 1.0 / mean_w : 1.0;

  w_.assign(d, 0.0);
  b_ = 0.0;
  Rng rng(config.seed);
  std::vector<double> x(d);
  std::size_t step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(m.rows());
    for (std::size_t r : order) {
      ++step;
      const double lr = 1.0 / (config.lambda * static_cast<double>(step));
      const auto row = m.row(r);
      for (std::size_t f = 0; f < d; ++f) {
        x[f] = (row[f] - mean_[f]) * scale_[f];
      }
      const double y = m.target(r) > 0.0f ? 1.0 : -1.0;
      const double sw = m.weight(r) * inv_mean_w;
      double dot = b_;
      for (std::size_t f = 0; f < d; ++f) dot += w_[f] * x[f];

      // Pegasos subgradient step.
      const double shrink = 1.0 - lr * config.lambda;
      for (double& v : w_) v *= shrink;
      if (y * dot < 1.0) {
        for (std::size_t f = 0; f < d; ++f) w_[f] += lr * sw * y * x[f];
        b_ += lr * sw * y * 0.1;  // lightly-regularized bias
      }
    }
  }
}

double LinearSvm::decision(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "decision on an untrained SVM");
  HDD_ASSERT(x.size() == w_.size());
  double dot = b_;
  for (std::size_t f = 0; f < w_.size(); ++f) {
    dot += w_[f] * (x[f] - mean_[f]) * scale_[f];
  }
  return dot;
}

double LinearSvm::predict(std::span<const float> x) const {
  return std::tanh(decision(x));
}

}  // namespace hdd::baselines
