#include "baselines/naive_bayes.h"

#include <cmath>

#include "common/error.h"

namespace hdd::baselines {

void NaiveBayesConfig::validate() const {
  HDD_REQUIRE(min_stddev > 0.0, "min_stddev must be positive");
}

void NaiveBayes::fit(const data::DataMatrix& m,
                     const NaiveBayesConfig& config) {
  config.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit naive Bayes on an empty matrix");
  const auto cols = static_cast<std::size_t>(m.cols());

  mean_good_.assign(cols, 0.0);
  mean_failed_.assign(cols, 0.0);
  var_good_.assign(cols, 0.0);
  var_failed_.assign(cols, 0.0);

  double w_good = 0.0, w_failed = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const bool failed = m.target(r) < 0.0f;
    const double w = m.weight(r);
    (failed ? w_failed : w_good) += w;
    auto& mean = failed ? mean_failed_ : mean_good_;
    const auto row = m.row(r);
    for (std::size_t f = 0; f < cols; ++f) mean[f] += w * row[f];
  }
  HDD_REQUIRE(w_good > 0.0 && w_failed > 0.0,
              "naive Bayes needs both classes");
  for (std::size_t f = 0; f < cols; ++f) {
    mean_good_[f] /= w_good;
    mean_failed_[f] /= w_failed;
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const bool failed = m.target(r) < 0.0f;
    const double w = m.weight(r);
    const auto& mean = failed ? mean_failed_ : mean_good_;
    auto& var = failed ? var_failed_ : var_good_;
    const auto row = m.row(r);
    for (std::size_t f = 0; f < cols; ++f) {
      const double d = row[f] - mean[f];
      var[f] += w * d * d;
    }
  }
  const double floor = config.min_stddev * config.min_stddev;
  for (std::size_t f = 0; f < cols; ++f) {
    var_good_[f] = std::max(var_good_[f] / w_good, floor);
    var_failed_[f] = std::max(var_failed_[f] / w_failed, floor);
  }
  log_prior_good_ = std::log(w_good / (w_good + w_failed));
  log_prior_failed_ = std::log(w_failed / (w_good + w_failed));
}

double NaiveBayes::predict(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "predict on an untrained NaiveBayes");
  HDD_ASSERT(x.size() == mean_good_.size());
  double log_good = log_prior_good_, log_failed = log_prior_failed_;
  for (std::size_t f = 0; f < x.size(); ++f) {
    const double dg = x[f] - mean_good_[f];
    const double df = x[f] - mean_failed_[f];
    log_good -= 0.5 * (dg * dg / var_good_[f] + std::log(var_good_[f]));
    log_failed -= 0.5 * (df * df / var_failed_[f] + std::log(var_failed_[f]));
  }
  // Margin via the posterior: tanh of half the log-odds equals
  // p(good) - p(failed).
  return std::tanh(0.5 * (log_good - log_failed));
}

}  // namespace hdd::baselines
