// The industry baseline: firmware-style per-attribute thresholds.
//
// Section II of the paper: "hard drive manufacturers estimate that the
// threshold-based algorithm implemented in drives can only obtain a failure
// detection rate of 3-10% with a low false alarm rate on the order of 0.1%",
// because thresholds are set conservatively. This detector reproduces that
// design: each feature gets a lower threshold at an extreme quantile of the
// *good* training population (SMART normalized values drop as health
// worsens), and a sample is flagged when any feature crosses its threshold.
#pragma once

#include <span>
#include <vector>

#include "data/matrix.h"

namespace hdd::baselines {

struct ThresholdConfig {
  // Quantile of the good population used as the trip point. The smaller it
  // is, the more conservative the detector (the firmware regime).
  double quantile = 1e-4;
  // Extra safety margin below/above the quantile, in units of the good
  // population's interquartile range. Vendors set trip points well beyond
  // anything a healthy drive reports — this is how the firmware algorithm
  // ends up at 3-10% detection.
  double margin_iqr = 1.5;
  // Absolute floor on the margin (normalized-value points). Counters that
  // are constant for healthy drives (zero IQR) would otherwise trip on the
  // first reallocated sector, which no vendor firmware does.
  double margin_abs = 45.0;
  // Features whose *increase* means trouble (raw counters) trip on the
  // upper (1 - quantile) tail instead.
  std::vector<int> increasing_features;

  void validate() const;
};

class ThresholdDetector {
 public:
  ThresholdDetector() = default;

  // Learns thresholds from the good rows (target > 0) of the matrix.
  void fit(const data::DataMatrix& m, const ThresholdConfig& config);

  bool trained() const { return !lower_.empty(); }

  // Margin convention: -1 if any feature trips its threshold, else +1.
  double predict(std::span<const float> x) const;
  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

  std::span<const float> lower_thresholds() const { return lower_; }
  std::span<const float> upper_thresholds() const { return upper_; }

 private:
  std::vector<float> lower_;  // trip when value < lower (NaN-free sentinel)
  std::vector<float> upper_;  // trip when value > upper
  std::vector<bool> increasing_;
};

}  // namespace hdd::baselines
