// Hidden Markov model failure prediction — Zhao et al. [10]: treat an
// attribute's recent readings as a time series, train one Gaussian-emission
// HMM on good windows and one on pre-failure windows, and warn when the
// log-likelihood ratio of a drive's latest window favours the failure
// model ("46% detection at 0% FAR with the best single attribute").
//
// GaussianHmm is a complete scaled-forward / Baum-Welch implementation for
// 1-D Gaussian emissions; HmmDetector packages the two-model likelihood
// ratio test over sliding windows of a chosen SMART attribute.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/split.h"
#include "eval/detection.h"
#include "smart/attributes.h"

namespace hdd::baselines {

struct HmmConfig {
  int states = 4;
  int baum_welch_iters = 25;
  // Convergence tolerance on the mean log-likelihood per observation.
  double tol = 1e-4;
  // Variance floor (quantized SMART readings can collapse a state).
  double min_variance = 0.25;
  std::uint64_t seed = 555;

  void validate() const;
};

class GaussianHmm {
 public:
  GaussianHmm() = default;

  // Trains with Baum-Welch over a set of observation sequences (each at
  // least 2 observations; shorter ones are skipped).
  void fit(const std::vector<std::vector<double>>& sequences,
           const HmmConfig& config);

  bool trained() const { return !means_.empty(); }
  int states() const { return static_cast<int>(means_.size()); }

  // Log-likelihood of a sequence under the model (scaled forward pass).
  double log_likelihood(std::span<const double> seq) const;

  // Per-observation log-likelihood (length-normalized, for comparing
  // windows of different sizes).
  double mean_log_likelihood(std::span<const double> seq) const;

  std::span<const double> state_means() const { return means_; }

 private:
  // Row-major transition matrix, initial distribution, emissions.
  std::vector<double> trans_;
  std::vector<double> init_;
  std::vector<double> means_;
  std::vector<double> vars_;
};

struct HmmDetectorConfig {
  smart::Attr attribute = smart::Attr::kTemperatureCelsius;
  int window_samples = 24;
  // Pre-failure training windows are taken this close to failure.
  int failed_window_hours = 168;
  // Warn when mean-LL(failed model) - mean-LL(good model) > margin.
  double llr_margin = 0.5;
  int max_training_windows = 4000;
  HmmConfig hmm;

  void validate() const;
};

class HmmDetector {
 public:
  HmmDetector() = default;

  void fit(const data::DriveDataset& dataset, const data::DatasetSplit& split,
           const HmmDetectorConfig& config);

  bool trained() const { return good_.trained() && failed_.trained(); }

  // Walks the record; alarms at the first window whose likelihood ratio
  // favours the failure model.
  eval::DriveOutcome detect(const smart::DriveRecord& drive,
                            std::size_t begin = 0) const;

  eval::EvalResult evaluate(const data::DriveDataset& dataset,
                            const data::DatasetSplit& split) const;

 private:
  HmmDetectorConfig config_;
  GaussianHmm good_;
  GaussianHmm failed_;
};

}  // namespace hdd::baselines
