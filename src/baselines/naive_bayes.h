// Supervised naive Bayes classifier — Hamerly & Elkan's second approach [7]
// ("55% accuracy at about 1% FAR" on the Quantum dataset).
//
// Gaussian class-conditional model per feature with a variance floor;
// class priors come from the (weighted) training distribution. The output
// is the posterior margin p(good|x) - p(failed|x) in [-1, 1], so the model
// plugs into the same voting detector as the trees.
#pragma once

#include <span>
#include <vector>

#include "data/matrix.h"

namespace hdd::baselines {

struct NaiveBayesConfig {
  // Floor on per-feature standard deviation (SMART values are quantized;
  // a zero-variance feature would otherwise dominate the likelihood).
  double min_stddev = 0.5;

  void validate() const;
};

class NaiveBayes {
 public:
  NaiveBayes() = default;

  void fit(const data::DataMatrix& m, const NaiveBayesConfig& config = {});

  bool trained() const { return !mean_good_.empty(); }

  // Posterior margin p(good|x) - p(failed|x).
  double predict(std::span<const float> x) const;
  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

 private:
  std::vector<double> mean_good_, var_good_;
  std::vector<double> mean_failed_, var_failed_;
  double log_prior_good_ = 0.0, log_prior_failed_ = 0.0;
};

}  // namespace hdd::baselines
