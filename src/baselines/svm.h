// Linear support vector machine — Murray et al. [6]'s strongest result
// ("SVM achieved the best performance of 50.6% detection and 0% FAR" with
// all 25 features). Trained with stochastic subgradient descent on the
// L2-regularized hinge loss (Pegasos-style step sizes); inputs are
// z-scored internally. predict() squashes the decision value through tanh
// so the output lands in the library's [-1, 1] margin convention.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/matrix.h"

namespace hdd::baselines {

struct SvmConfig {
  double lambda = 1e-4;  // L2 regularization strength
  int epochs = 30;
  std::uint64_t seed = 31337;

  void validate() const;
};

class LinearSvm {
 public:
  LinearSvm() = default;

  // Targets use the library's +1 (good) / -1 (failed) convention; sample
  // weights scale each example's hinge loss.
  void fit(const data::DataMatrix& m, const SvmConfig& config = {});

  bool trained() const { return !w_.empty(); }
  int num_features() const { return static_cast<int>(w_.size()); }

  // Raw decision value w·x + b in standardized feature space.
  double decision(std::span<const float> x) const;

  // tanh-squashed margin; negative = failed.
  double predict(std::span<const float> x) const;
  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_, scale_;
};

}  // namespace hdd::baselines
