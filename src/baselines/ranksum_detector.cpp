#include "baselines/ranksum_detector.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "stats/nonparametric.h"

namespace hdd::baselines {

void RankSumConfig::validate() const {
  HDD_REQUIRE(window_samples >= 3, "window_samples must be >= 3");
  HDD_REQUIRE(reference_size >= 10, "reference_size must be >= 10");
  HDD_REQUIRE(z_critical > 0.0, "z_critical must be positive");
}

void RankSumDetector::fit(const data::DataMatrix& m,
                          const smart::FeatureSet& features,
                          const RankSumConfig& config) {
  config.validate();
  HDD_REQUIRE(m.cols() == features.size(),
              "matrix layout does not match the feature set");
  features_ = features;
  config_ = config;

  // Indices of good rows; subsample down to reference_size.
  std::vector<std::size_t> good;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) > 0.0f) good.push_back(r);
  }
  HDD_REQUIRE(!good.empty(), "no good rows for the reference");
  Rng rng(config.seed);
  if (good.size() > static_cast<std::size_t>(config.reference_size)) {
    const auto perm = rng.permutation(good.size());
    std::vector<std::size_t> pick;
    pick.reserve(static_cast<std::size_t>(config.reference_size));
    for (int i = 0; i < config.reference_size; ++i) {
      pick.push_back(good[perm[static_cast<std::size_t>(i)]]);
    }
    good = std::move(pick);
  }

  const auto cols = static_cast<std::size_t>(m.cols());
  reference_.assign(cols, {});
  for (std::size_t f = 0; f < cols; ++f) {
    auto& ref = reference_[f];
    ref.reserve(good.size());
    for (std::size_t r : good) ref.push_back(m.row(r)[f]);
    std::sort(ref.begin(), ref.end());
  }
}

eval::DriveOutcome RankSumDetector::detect(const smart::DriveRecord& drive,
                                           std::size_t begin) const {
  HDD_REQUIRE(trained(), "detect on an untrained RankSumDetector");
  eval::DriveOutcome outcome;
  const std::size_t n = drive.samples.size();
  if (begin >= n) return outcome;

  // Extract all feature rows once.
  std::vector<std::vector<double>> series(reference_.size());
  std::vector<std::int64_t> hours;
  for (std::size_t i = begin; i < n; ++i) {
    const auto row = smart::extract_features(drive, i, features_);
    for (std::size_t f = 0; f < series.size(); ++f) {
      series[f].push_back((*row)[f]);
    }
    hours.push_back(drive.samples[i].hour);
  }

  const auto window = static_cast<std::size_t>(config_.window_samples);
  for (std::size_t t = 0; t + begin < n; ++t) {
    if (t + 1 < window) continue;  // window not yet filled
    for (std::size_t f = 0; f < series.size(); ++f) {
      const std::span<const double> recent(series[f].data() + (t + 1 - window),
                                           window);
      const auto result = stats::rank_sum_test(recent, reference_[f]);
      // Health attributes drop as drives deteriorate: one-sided low test.
      if (result.z < -config_.z_critical) {
        outcome.alarmed = true;
        outcome.alarm_hour = hours[t];
        return outcome;
      }
    }
  }
  return outcome;
}

eval::EvalResult RankSumDetector::evaluate(
    const data::DriveDataset& dataset, const data::DatasetSplit& split) const {
  struct Job {
    std::size_t drive;
    std::size_t begin;
  };
  std::vector<Job> jobs;
  for (std::size_t k = 0; k < split.good_drives.size(); ++k) {
    if (split.good_test_begin[k] >=
        dataset.drives[split.good_drives[k]].samples.size()) {
      continue;
    }
    jobs.push_back({split.good_drives[k], split.good_test_begin[k]});
  }
  for (std::size_t di : split.test_failed) {
    if (!dataset.drives[di].empty()) jobs.push_back({di, 0});
  }

  std::vector<eval::DriveOutcome> outcomes(jobs.size());
  ThreadPool::global().parallel_for(0, jobs.size(), [&](std::size_t j) {
    outcomes[j] = detect(dataset.drives[jobs[j].drive], jobs[j].begin);
  });

  eval::EvalResult r;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& d = dataset.drives[jobs[j].drive];
    if (d.failed) {
      ++r.n_failed;
      if (outcomes[j].alarmed) {
        ++r.detections;
        r.tia_hours.push_back(
            static_cast<double>(d.fail_hour - outcomes[j].alarm_hour));
      }
    } else {
      ++r.n_good;
      if (outcomes[j].alarmed) ++r.false_alarms;
    }
  }
  return r;
}

}  // namespace hdd::baselines
