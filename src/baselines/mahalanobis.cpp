#include "baselines/mahalanobis.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace hdd::baselines {

void MahalanobisConfig::validate() const {
  HDD_REQUIRE(quantile > 0.0 && quantile < 0.5,
              "quantile must be in (0, 0.5)");
  HDD_REQUIRE(ridge >= 0.0, "ridge must be non-negative");
}

void MahalanobisDetector::fit(const data::DataMatrix& m,
                              const MahalanobisConfig& config) {
  config.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit Mahalanobis on an empty matrix");
  dim_ = m.cols();
  const auto d = static_cast<std::size_t>(dim_);

  // Mean of the good rows.
  mean_.assign(d, 0.0);
  std::size_t n_good = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) <= 0.0f) continue;
    const auto row = m.row(r);
    for (std::size_t f = 0; f < d; ++f) mean_[f] += row[f];
    ++n_good;
  }
  HDD_REQUIRE(n_good > d, "need more good rows than dimensions");
  for (double& v : mean_) v /= static_cast<double>(n_good);

  // Covariance of the good rows.
  std::vector<double> cov(d * d, 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) <= 0.0f) continue;
    const auto row = m.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double di = row[i] - mean_[i];
      for (std::size_t j = 0; j <= i; ++j) {
        cov[i * d + j] += di * (row[j] - mean_[j]);
      }
    }
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    trace += cov[i * d + i] / static_cast<double>(n_good - 1);
  }
  const double ridge = config.ridge * std::max(trace / static_cast<double>(d),
                                               1e-9);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      cov[i * d + j] /= static_cast<double>(n_good - 1);
    }
    cov[i * d + i] += ridge;
  }

  // Cholesky: cov = L L^T (lower triangle stored in chol_).
  chol_.assign(d * d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = cov[i * d + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= chol_[i * d + k] * chol_[j * d + k];
      }
      if (i == j) {
        HDD_REQUIRE(sum > 0.0,
                    "covariance not positive definite; raise the ridge");
        chol_[i * d + i] = std::sqrt(sum);
      } else {
        chol_[i * d + j] = sum / chol_[j * d + j];
      }
    }
  }

  // Threshold: extreme quantile of the good distances.
  std::vector<double> dists;
  dists.reserve(n_good);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) > 0.0f) dists.push_back(distance2(m.row(r)));
  }
  threshold2_ = percentile(dists, 100.0 * (1.0 - config.quantile));
  HDD_ASSERT(threshold2_ > 0.0);
}

double MahalanobisDetector::distance2(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "distance on an untrained MahalanobisDetector");
  HDD_ASSERT(static_cast<int>(x.size()) == dim_);
  const auto d = static_cast<std::size_t>(dim_);
  // Solve L y = (x - mean); then distance^2 = |y|^2.
  std::vector<double> y(d);
  for (std::size_t i = 0; i < d; ++i) {
    double sum = x[i] - mean_[i];
    for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * d + k] * y[k];
    y[i] = sum / chol_[i * d + i];
  }
  double total = 0.0;
  for (double v : y) total += v * v;
  return total;
}

double MahalanobisDetector::predict(std::span<const float> x) const {
  const double ratio = distance2(x) / threshold2_;
  return clamp(1.0 - ratio, -1.0, 1.0);
}

}  // namespace hdd::baselines
