// Mahalanobis-distance anomaly detector — Wang et al. [12], [13]: build a
// baseline "Mahalanobis space" from good-drive data and flag samples whose
// distance from it is large ("detect about 67% of failed drives with zero
// FAR" in their study).
//
// The covariance is estimated from good rows with ridge regularization and
// inverted via a hand-rolled Cholesky factorization (13x13 — no external
// linear algebra needed). The alarm threshold is the (1 - quantile)
// distance quantile of the good training data; predict() maps distance to
// the common margin convention.
#pragma once

#include <span>
#include <vector>

#include "data/matrix.h"

namespace hdd::baselines {

struct MahalanobisConfig {
  // Good-population distance quantile used as the alarm threshold.
  double quantile = 1e-3;
  // Ridge added to the covariance diagonal (as a fraction of its trace).
  double ridge = 1e-4;

  void validate() const;
};

class MahalanobisDetector {
 public:
  MahalanobisDetector() = default;

  // Learns mean/covariance from the good rows (target > 0).
  void fit(const data::DataMatrix& m, const MahalanobisConfig& config = {});

  bool trained() const { return !mean_.empty(); }

  // Squared Mahalanobis distance of a sample from the good baseline.
  double distance2(std::span<const float> x) const;

  // Margin: positive while the distance is inside the learned threshold,
  // negative beyond it; clamped to [-1, 1].
  double predict(std::span<const float> x) const;
  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

  double threshold2() const { return threshold2_; }

 private:
  std::vector<double> mean_;
  std::vector<double> chol_;  // lower-triangular Cholesky factor of cov
  double threshold2_ = 0.0;
  int dim_ = 0;
};

}  // namespace hdd::baselines
