#include "cli/command.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace hdd::cli {

namespace {

// Strict typed parses: the whole token must be consumed, so "7x" or an
// empty string is a usage error rather than a silently truncated value.
bool parse_long(const std::string& text, long long& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoll(text.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool parse_real(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(text.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0';
}

std::string joined_choices(const ArgSpec& spec, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < spec.choices.size(); ++i) {
    if (i > 0) out += sep;
    out += spec.choices[i];
  }
  return out;
}

void validate_value(const ArgSpec& spec, const std::string& value) {
  switch (spec.type) {
    case ArgType::kString:
      return;
    case ArgType::kInt:
    case ArgType::kUint64: {
      long long v = 0;
      if (!parse_long(value, v) ||
          (spec.type == ArgType::kUint64 && v < 0)) {
        throw UsageError("--" + spec.name + " expects an integer, got '" +
                         value + "'");
      }
      return;
    }
    case ArgType::kDouble: {
      double v = 0;
      if (!parse_real(value, v)) {
        throw UsageError("--" + spec.name + " expects a number, got '" +
                         value + "'");
      }
      return;
    }
    case ArgType::kChoice:
      for (const std::string& c : spec.choices) {
        if (value == c) return;
      }
      throw UsageError("--" + spec.name + " must be " +
                       joined_choices(spec, "|"));
  }
}

// One usage token for a flag: "--name V" or "[--format text|json]".
std::string flag_token(const ArgSpec& spec) {
  std::string inner = "--" + spec.name;
  if (spec.type == ArgType::kChoice) {
    inner += " " + joined_choices(spec, "|");
  } else {
    inner += " " + (spec.value_name.empty() ? std::string("V")
                                            : spec.value_name);
  }
  return spec.required ? inner : "[" + inner + "]";
}

}  // namespace

ArgSpec ArgSpec::str(std::string name, std::string value_name, bool required,
                     std::string fallback) {
  ArgSpec s;
  s.name = std::move(name);
  s.type = ArgType::kString;
  s.required = required;
  s.value_name = std::move(value_name);
  s.fallback = std::move(fallback);
  return s;
}

ArgSpec ArgSpec::integer(std::string name, std::string value_name,
                         std::string fallback) {
  ArgSpec s;
  s.name = std::move(name);
  s.type = ArgType::kInt;
  s.value_name = std::move(value_name);
  s.fallback = std::move(fallback);
  return s;
}

ArgSpec ArgSpec::uint64(std::string name, std::string value_name,
                        std::string fallback) {
  ArgSpec s;
  s.name = std::move(name);
  s.type = ArgType::kUint64;
  s.value_name = std::move(value_name);
  s.fallback = std::move(fallback);
  return s;
}

ArgSpec ArgSpec::real(std::string name, std::string value_name,
                      std::string fallback) {
  ArgSpec s;
  s.name = std::move(name);
  s.type = ArgType::kDouble;
  s.value_name = std::move(value_name);
  s.fallback = std::move(fallback);
  return s;
}

ArgSpec ArgSpec::choice(std::string name, std::vector<std::string> choices,
                        std::string fallback) {
  ArgSpec s;
  s.name = std::move(name);
  s.type = ArgType::kChoice;
  s.choices = std::move(choices);
  s.fallback = std::move(fallback);
  return s;
}

bool Args::has(const std::string& name) const {
  return values_.count(name) > 0;
}

const std::string& Args::get(const std::string& name) const {
  const auto it = values_.find(name);
  HDD_ASSERT_MSG(it != values_.end(), "flag --" + name +
                     " read but not declared (and no default)");
  return it->second;
}

int Args::get_int(const std::string& name) const {
  long long v = 0;
  HDD_ASSERT_MSG(parse_long(get(name), v), "--" + name + " not an integer");
  return static_cast<int>(v);
}

std::uint64_t Args::get_uint64(const std::string& name) const {
  long long v = 0;
  HDD_ASSERT_MSG(parse_long(get(name), v) && v >= 0,
                 "--" + name + " not a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

double Args::get_double(const std::string& name) const {
  double v = 0;
  HDD_ASSERT_MSG(parse_real(get(name), v), "--" + name + " not a number");
  return v;
}

void Registry::add(Command command) {
  HDD_ASSERT_MSG(find(command.name) == nullptr,
                 "duplicate command " + command.name);
  commands_.push_back(std::move(command));
}

const Command* Registry::find(const std::string& name) const {
  for (const Command& c : commands_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string Registry::usage_text() const {
  std::ostringstream os;
  os << "usage: " << program_ << " <command> [options]\n";
  constexpr std::size_t kNameCol = 12;   // "  " + name padded
  constexpr std::size_t kWrapCol = 78;
  for (const Command& c : commands_) {
    std::string line = "  " + c.name;
    if (line.size() < kNameCol) line.append(kNameCol - line.size(), ' ');
    std::size_t used = line.size();
    bool first = true;
    for (const ArgSpec& spec : c.args) {
      const std::string tok = flag_token(spec);
      if (!first && used + 1 + tok.size() > kWrapCol) {
        os << line << '\n';
        line.assign(kNameCol, ' ');
        used = line.size();
      } else if (!first) {
        line += ' ';
        ++used;
      }
      line += tok;
      used += tok.size();
      first = false;
    }
    os << line << '\n';
  }
  os << "global flags (any command):\n"
        "  --metrics-out FILE|-    dump the metrics registry at exit\n"
        "  --metrics-format text|json\n"
        "  --log-level debug|info|warn|error\n"
        "  --log-format text|json  json adds timestamp + trace id fields\n";
  return os.str();
}

GlobalOptions Registry::extract_globals(std::vector<std::string>& rest) const {
  return extract_globals_impl(rest, /*apply=*/true);
}

GlobalOptions Registry::extract_globals_impl(std::vector<std::string>& rest,
                                             bool apply) const {
  GlobalOptions g;
  for (std::size_t i = 0; i < rest.size();) {
    const std::string key = rest[i];
    if (key != "--metrics-out" && key != "--metrics-format" &&
        key != "--log-level" && key != "--log-format") {
      ++i;
      continue;
    }
    if (i + 1 >= rest.size()) throw UsageError("missing value for " + key);
    const std::string value = rest[i + 1];
    if (key == "--metrics-out") {
      g.metrics_out = value;
    } else if (key == "--metrics-format") {
      const auto f = obs::parse_format(value);
      if (!f) throw UsageError("--metrics-format must be text or json");
      g.metrics_format = *f;
    } else if (key == "--log-format") {
      const auto format = parse_log_format(value);
      if (!format) throw UsageError("--log-format must be text or json");
      if (apply) set_log_format(*format);
    } else {
      const auto level = parse_log_level(value);
      if (!level) {
        throw UsageError("--log-level must be debug, info, warn or error");
      }
      if (apply) set_log_level(*level);
    }
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
               rest.begin() + static_cast<std::ptrdiff_t>(i) + 2);
  }
  return g;
}

int Registry::check(std::vector<std::string> rest) const {
  try {
    if (rest.empty()) throw UsageError("");
    const std::string name = rest.front();
    rest.erase(rest.begin());
    (void)extract_globals_impl(rest, /*apply=*/false);
    const Command* command = find(name);
    if (command == nullptr) throw UsageError("unknown command: " + name);
    (void)parse(*command, rest);
    return 0;
  } catch (const UsageError&) {
    return 2;
  }
}

Args Registry::parse(const Command& command,
                     const std::vector<std::string>& rest) const {
  Args args;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& key = rest[i];
    if (key.rfind("--", 0) != 0) throw UsageError("bad option: " + key);
    const std::string name = key.substr(2);
    const ArgSpec* spec = nullptr;
    for (const ArgSpec& s : command.args) {
      if (s.name == name) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      throw UsageError("unknown option " + key + " for this command");
    }
    if (i + 1 >= rest.size()) throw UsageError("missing value for " + key);
    const std::string& value = rest[++i];
    validate_value(*spec, value);
    args.values_[name] = value;
  }
  for (const ArgSpec& spec : command.args) {
    if (args.values_.count(spec.name) > 0) continue;
    if (spec.required) throw UsageError("missing required --" + spec.name);
    if (!spec.fallback.empty()) args.values_[spec.name] = spec.fallback;
  }
  return args;
}

int Registry::dispatch(int argc, char** argv) const {
  std::vector<std::string> rest(argv + 1, argv + argc);
  GlobalOptions globals;
  int rc = 0;
  bool dump_metrics = false;
  try {
    if (rest.empty()) throw UsageError("");
    const std::string name = rest.front();
    rest.erase(rest.begin());
    globals = extract_globals(rest);
    // With no dump requested the registry stays off: every instrument
    // still registers, but each record is a single relaxed load.
    if (globals.metrics_out.empty()) {
      obs::Registry::global().set_enabled(false);
    }
    const Command* command = find(name);
    if (command == nullptr) throw UsageError("unknown command: " + name);
    const Args args = parse(*command, rest);
    dump_metrics = !globals.metrics_out.empty();
    try {
      rc = command->run(args);
    } catch (const UsageError&) {
      throw;  // semantic usage errors from handlers still exit 2
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      rc = 1;
    }
  } catch (const UsageError& e) {
    if (*e.what() != '\0') std::cerr << "error: " << e.what() << "\n\n";
    std::cerr << usage_text();
    return 2;
  }
  if (dump_metrics) {
    const bool ok =
        obs::write_snapshot(obs::Registry::global().snapshot(),
                            globals.metrics_out, globals.metrics_format);
    if (!ok && rc == 0) rc = 1;
  }
  return rc;
}

}  // namespace hdd::cli
