// cli — table-driven command registry for the hddpredict front end.
//
// Every subcommand declares itself as a Command: a name, a one-line
// summary, and a table of typed ArgSpecs. The registry owns everything the
// per-command parsers used to duplicate: strict flag validation (a typo is
// a usage error, never a silent default), required/optional handling,
// typed value parsing (int/uint64/double/choice), auto-generated usage
// text, and the global flags every command accepts (--metrics-out,
// --metrics-format, --log-level).
//
// Exit-code contract (unchanged from the hand-rolled parser, pinned by the
// split-capture cli tests): 0 success, 1 runtime failure, 2 bad invocation
// (unknown command, unknown/malformed/missing flag), 3 lint findings.
// Usage and error text goes to stderr; stdout carries results only.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/exposition.h"

namespace hdd::cli {

// Thrown for any invocation error; the driver prints the message plus the
// usage text to stderr and exits 2.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

enum class ArgType { kString, kInt, kUint64, kDouble, kChoice };

struct ArgSpec {
  std::string name;        // flag name without the leading "--"
  ArgType type = ArgType::kString;
  bool required = false;
  std::string value_name;  // metavar in the usage line ("F", "N", "DIR")
  std::string fallback;    // textual default for optional flags
  std::vector<std::string> choices;  // kChoice: the allowed values

  static ArgSpec str(std::string name, std::string value_name,
                     bool required = false, std::string fallback = "");
  static ArgSpec integer(std::string name, std::string value_name,
                         std::string fallback);
  static ArgSpec uint64(std::string name, std::string value_name,
                        std::string fallback);
  static ArgSpec real(std::string name, std::string value_name,
                      std::string fallback);
  static ArgSpec choice(std::string name, std::vector<std::string> choices,
                        std::string fallback);
};

// Parsed, validated flag values for one invocation. Typed getters re-parse
// the validated text, so a Command handler can't read a flag under the
// wrong type without it having been validated first.
class Args {
 public:
  bool has(const std::string& name) const;
  const std::string& get(const std::string& name) const;
  int get_int(const std::string& name) const;
  std::uint64_t get_uint64(const std::string& name) const;
  double get_double(const std::string& name) const;

 private:
  friend class Registry;
  std::map<std::string, std::string> values_;
};

struct Command {
  std::string name;
  std::string summary;  // one line for the usage text
  std::vector<ArgSpec> args;
  std::function<int(const Args&)> run;
};

// The global flags, extracted before command dispatch from any position on
// the command line. --log-level is applied immediately (set_log_level).
struct GlobalOptions {
  std::string metrics_out;  // "" = no dump; "-" = stdout
  obs::Format metrics_format = obs::Format::kPrometheus;
};

class Registry {
 public:
  explicit Registry(std::string program) : program_(std::move(program)) {}

  void add(Command command);
  const Command* find(const std::string& name) const;
  const std::vector<Command>& commands() const { return commands_; }

  // The full auto-generated usage text (one line per command plus the
  // global-flags block).
  std::string usage_text() const;

  // Pulls --metrics-out / --metrics-format / --log-level out of `rest`
  // (mutating it), throwing UsageError on bad values.
  GlobalOptions extract_globals(std::vector<std::string>& rest) const;

  // Parse-only dry run over the argv tail (everything after the program
  // name): global-flag extraction, command lookup, and full ArgSpec
  // validation — but no handler runs, nothing prints, and the process-wide
  // log/metrics state is left untouched. Returns the exit code dispatch's
  // parsing would have produced: 0 when the line parses cleanly, 2 on any
  // usage error. This is the fuzzer's entry point into the real command
  // table, so it must stay side-effect-free.
  int check(std::vector<std::string> rest) const;

  // Validates `rest` against the command's ArgSpec table: every flag must
  // be known, carry a value, parse under its type, and satisfy choice
  // membership; required flags must be present. Throws UsageError.
  Args parse(const Command& command, const std::vector<std::string>& rest) const;

  // Full driver: extract globals, find the command, parse, run. On
  // UsageError prints the error and usage to stderr and returns 2; other
  // exceptions propagate (the caller maps them to exit 1). The metrics
  // dump (if requested) is written after the command returns, even on a
  // runtime error.
  int dispatch(int argc, char** argv) const;

 private:
  GlobalOptions extract_globals_impl(std::vector<std::string>& rest,
                                     bool apply) const;

  std::string program_;
  std::vector<Command> commands_;
};

}  // namespace hdd::cli
