#include "pipeline/scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace hdd::pipeline {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kFixed: return "fixed";
    case Strategy::kAccumulation: return "accumulation";
    case Strategy::kReplacing: return "replacing";
  }
  return "?";
}

std::pair<int, int> training_range(Strategy s, int replace_cycle_weeks,
                                   int test_week) {
  switch (s) {
    case Strategy::kFixed:
      return {0, 1};
    case Strategy::kAccumulation:
      return {0, test_week - 1};
    case Strategy::kReplacing: {
      const int c = replace_cycle_weeks;
      // Use the last fully observed cycle; until one completes, fall back
      // to everything observed so far (only past weeks — never the test
      // week itself).
      const int completed = (test_week - 1) / c;
      if (completed == 0) return {0, test_week - 1};
      return {(completed - 1) * c, completed * c};
    }
  }
  return {0, 1};
}

RetrainScheduler::RetrainScheduler(SchedulerConfig config) : config_(config) {
  if (config_.strategy == Strategy::kReplacing) {
    HDD_REQUIRE(config_.replace_cycle_weeks >= 1,
                "replace cycle must be >= 1 week");
  }
  HDD_REQUIRE(
      config_.retrain_every_hours > 0 || config_.retrain_every_samples > 0,
      "at least one retrain trigger must be enabled");
}

bool RetrainScheduler::due(std::uint64_t total_samples,
                           std::int64_t last_hour) const {
  if (marked_ && config_.strategy == Strategy::kFixed) return false;
  if (config_.retrain_every_samples > 0 &&
      total_samples >= marked_samples_ + config_.retrain_every_samples) {
    return true;
  }
  if (config_.retrain_every_hours > 0 &&
      last_hour >= marked_hour_ + config_.retrain_every_hours) {
    return true;
  }
  return false;
}

void RetrainScheduler::mark(std::uint64_t total_samples,
                            std::int64_t last_hour) {
  marked_ = true;
  marked_samples_ = total_samples;
  marked_hour_ = std::max(marked_hour_, last_hour);
}

std::pair<std::int64_t, std::int64_t> RetrainScheduler::window_hours(
    std::int64_t last_hour) const {
  // The live watermark maps onto the paper's week grid: a node that has
  // observed through `last_hour` is about to predict the week containing
  // it, so that week is the test week and everything before it is fair
  // training history.
  const int test_week =
      std::max(2, static_cast<int>(last_hour / 168) + 1);
  const auto range =
      training_range(config_.strategy, config_.replace_cycle_weeks, test_week);
  return {static_cast<std::int64_t>(range.first) * 168,
          static_cast<std::int64_t>(range.second) * 168};
}

}  // namespace hdd::pipeline
