// UpdatePipeline — the continuous model-update control loop (productionized
// Section V-B3).
//
// A monitoring node journals its fleet's telemetry into a TelemetryStore;
// this pipeline periodically materializes the scheduler's training window
// from that store, trains a candidate model, and promotes it into a live
// SwappableScorer only if it clears two gates:
//   1. lint  — the analysis:: static verifier finds no warning/error-level
//              defect in the candidate (dead splits, unreachable leaves...);
//   2. guard — FAR/FDR measured on a held-back validation slice stay inside
//              the configured rails.
// Promotion is journal-first: the generation record (store/format.h type 3)
// is fsynced before the in-memory swap, so kill -9 between the two steps
// resumes to the *new* generation — the swap is the only non-durable step
// and it is idempotent from the journal. Rejected candidates are dropped on
// the floor (counted, never scored). Shadow scoring of a candidate against
// the incumbent on live traffic lives in core::FleetScorer::set_shadow; the
// serve retrain loop (serve/retrain_loop.h) stitches both together.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "core/predictor.h"
#include "core/swappable.h"
#include "pipeline/scheduler.h"
#include "smart/drive.h"

namespace hdd::obs {
class Counter;
class Gauge;
class Registry;
}  // namespace hdd::obs

namespace hdd::store {
class TelemetryStore;
}

namespace hdd::pipeline {

// FAR/FDR rails a candidate must stay inside on the validation slice. A
// rail whose side of the split holds no drives is vacuous (a window with no
// failed validation drives cannot measure FDR).
struct GuardrailConfig {
  double max_far = 1.0;   // reject when validation FAR exceeds this
  double min_fdr = 0.0;   // reject when validation FDR falls below this
  bool require_lint_clean = true;  // reject on any verifier finding
};

// What a retrain cycle did. Fixed codes: these cross the serve wire as one
// byte (StatsResponse::last_outcome).
enum class Outcome : std::uint8_t {
  kNone = 0,  // no cycle has run yet
  kPromoted = 1,
  kRejectedLint = 2,
  kRejectedGuardrail = 3,
  kRejectedNoData = 4,      // window held no trainable samples
  kRejectedTrainFailed = 5, // trainer threw
  kSkipped = 6,             // scheduler not due
};

const char* outcome_name(Outcome o);

struct PipelineConfig {
  SchedulerConfig scheduler;
  // Candidate family + training parameters + voting (e.g. core::preset("ct")).
  core::PredictorConfig trainer;
  GuardrailConfig guardrail;
  analysis::VerifyOptions verify;  // lint-gate options

  // Good/failed drives split between training and held-back validation.
  double train_fraction = 0.7;
  std::uint64_t seed = 31;

  // Serve loop only: samples the candidate must shadow-score on live
  // traffic before promotion (0 = promote as soon as the gates pass).
  std::uint64_t min_shadow_samples = 0;

  // Registry for the hdd_pipeline_* instruments; nullptr = global.
  obs::Registry* metrics = nullptr;
};

// The hdd_pipeline_* control-loop instruments (DESIGN.md §10). Shadow
// divergence counters live on FleetScorer, not here.
struct PipelineMetrics {
  obs::Counter* cycles = nullptr;      // hdd_pipeline_retrain_cycles_total
  obs::Counter* promotions = nullptr;  // hdd_pipeline_promotions_total
  obs::Counter* rej_lint = nullptr;    // hdd_pipeline_rejections_total{...}
  obs::Counter* rej_guardrail = nullptr;
  obs::Counter* rej_no_data = nullptr;
  obs::Counter* rej_train_failed = nullptr;
  obs::Gauge* generation = nullptr;    // hdd_pipeline_generation

  void record(Outcome o) const;
};

PipelineMetrics make_pipeline_metrics(obs::Registry* registry);

struct GateResult {
  Outcome outcome = Outcome::kNone;
  // Non-null exactly when outcome == kPromoted (gates passed); the caller
  // owns journaling + swapping it in.
  std::shared_ptr<const core::SampleScorer> candidate;
  double val_far = 0.0;
  double val_fdr = 0.0;
  std::size_t train_rows = 0;
  std::string reason;  // human-readable rejection cause ("" when promoted)
};

// Trains a candidate on a deterministic train_fraction split of `goods` +
// `failed_pool` and runs it through the lint and guardrail gates.
// `window_weeks` is the training window's width (scales the per-drive good
// sampling density, matching update::simulate_long_term). Pure function of
// its inputs — never touches a store or a live scorer.
GateResult train_and_gate(std::vector<smart::DriveRecord> goods,
                          const std::vector<smart::DriveRecord>& failed_pool,
                          int window_weeks, const PipelineConfig& config);

// Deserializes a journaled generation record's model text back into a
// scorer (inverse of SampleScorer::save). Throws DataError on malformed
// text.
std::shared_ptr<const core::SampleScorer> load_generation_model(
    const std::string& model_text);

struct CycleResult {
  Outcome outcome = Outcome::kNone;
  std::uint64_t generation = 0;  // live generation after the cycle
  double val_far = 0.0;
  double val_fdr = 0.0;
  std::string reason;
};

// Store-backed pipeline over one TelemetryStore and one SwappableScorer
// (the `autoretrain` CLI command and offline tests; the serve daemon runs
// the multi-shard variant in serve/retrain_loop.h). Single-threaded by
// contract — only the swap itself is concurrency-safe.
class UpdatePipeline {
 public:
  // All referenced objects must outlive the pipeline. Every drive in
  // `store` is treated as good telemetry; `failed_pool` supplies the
  // labeled failure records (the paper shares one failed set across all
  // retrains).
  UpdatePipeline(core::SwappableScorer& scorer, store::TelemetryStore& store,
                 std::vector<smart::DriveRecord> failed_pool,
                 PipelineConfig config);

  const RetrainScheduler& scheduler() const { return scheduler_; }
  const CycleResult& last_result() const { return last_; }

  // One scheduler tick: trains, gates and (maybe) promotes when due.
  // `force` bypasses the due-check (offline `autoretrain --cycles`).
  CycleResult run_cycle(bool force = false);

 private:
  core::SwappableScorer* scorer_;
  store::TelemetryStore* store_;
  std::vector<smart::DriveRecord> failed_;
  PipelineConfig config_;
  RetrainScheduler scheduler_;
  PipelineMetrics metrics_;
  CycleResult last_;
};

}  // namespace hdd::pipeline
