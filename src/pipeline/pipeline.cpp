#include "pipeline/pipeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/model_io.h"
#include "data/training.h"
#include "eval/detection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/telemetry_store.h"

namespace hdd::pipeline {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kNone: return "none";
    case Outcome::kPromoted: return "promoted";
    case Outcome::kRejectedLint: return "rejected-lint";
    case Outcome::kRejectedGuardrail: return "rejected-guardrail";
    case Outcome::kRejectedNoData: return "rejected-no-data";
    case Outcome::kRejectedTrainFailed: return "rejected-train-failed";
    case Outcome::kSkipped: return "skipped";
  }
  return "?";
}

void PipelineMetrics::record(Outcome o) const {
  if (cycles == nullptr) return;
  if (o != Outcome::kSkipped && o != Outcome::kNone) cycles->inc();
  switch (o) {
    case Outcome::kPromoted: promotions->inc(); break;
    case Outcome::kRejectedLint: rej_lint->inc(); break;
    case Outcome::kRejectedGuardrail: rej_guardrail->inc(); break;
    case Outcome::kRejectedNoData: rej_no_data->inc(); break;
    case Outcome::kRejectedTrainFailed: rej_train_failed->inc(); break;
    case Outcome::kNone:
    case Outcome::kSkipped:
      break;
  }
}

PipelineMetrics make_pipeline_metrics(obs::Registry* registry) {
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::global();
  PipelineMetrics m;
  m.cycles = &reg.counter("hdd_pipeline_retrain_cycles_total",
                          "Retrain cycles that trained a candidate.");
  m.promotions = &reg.counter("hdd_pipeline_promotions_total",
                              "Candidates promoted to the live scorer.");
  const char* rej_name = "hdd_pipeline_rejections_total";
  const char* rej_help = "Candidates rejected, by gate.";
  m.rej_lint = &reg.counter(rej_name, rej_help, {{"reason", "lint"}});
  m.rej_guardrail =
      &reg.counter(rej_name, rej_help, {{"reason", "guardrail"}});
  m.rej_no_data = &reg.counter(rej_name, rej_help, {{"reason", "no_data"}});
  m.rej_train_failed =
      &reg.counter(rej_name, rej_help, {{"reason", "train_failed"}});
  m.generation = &reg.gauge("hdd_pipeline_generation",
                            "Live model generation (0 = seed model).");
  return m;
}

namespace {

std::string first_finding(const analysis::Report& report) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.severity != analysis::Severity::kNote) {
      return d.code + " at " + d.location + ": " + d.message;
    }
  }
  return "verifier finding";
}

}  // namespace

GateResult train_and_gate(std::vector<smart::DriveRecord> goods,
                          const std::vector<smart::DriveRecord>& failed_pool,
                          int window_weeks, const PipelineConfig& config) {
  GateResult res;

  // Deterministic held-back split of both pools: the same seed always
  // carves the same validation slice, so a rejected candidate re-trained
  // on the same window is judged against the same data.
  Rng rng(config.seed);
  const auto fperm = rng.permutation(failed_pool.size());
  const auto gperm = rng.permutation(goods.size());
  const auto n_train_failed = static_cast<std::size_t>(std::round(
      static_cast<double>(failed_pool.size()) * config.train_fraction));
  const auto n_train_good = static_cast<std::size_t>(std::round(
      static_cast<double>(goods.size()) * config.train_fraction));

  const std::string family = "pipeline";
  data::DriveDataset train_ds;
  train_ds.family_names = {family};
  data::DatasetSplit train_split;
  for (std::size_t i = 0; i < n_train_good; ++i) {
    auto& g = goods[gperm[i]];
    if (g.empty()) continue;
    train_split.good_drives.push_back(train_ds.drives.size());
    train_split.good_test_begin.push_back(g.samples.size());  // all train
    train_ds.drives.push_back(std::move(g));
  }
  for (std::size_t k = 0; k < n_train_failed; ++k) {
    train_split.train_failed.push_back(train_ds.drives.size());
    train_ds.drives.push_back(failed_pool[fperm[k]]);
  }
  if (train_split.good_drives.empty() || train_split.train_failed.empty()) {
    res.outcome = Outcome::kRejectedNoData;
    res.reason = train_split.good_drives.empty()
                     ? "training window holds no good samples"
                     : "no failed drives in the training split";
    return res;
  }

  data::TrainingConfig tc = config.trainer.training;
  // Keep the per-week good sampling density constant as windows grow
  // (matches update::simulate_long_term).
  tc.good_samples_per_drive =
      config.trainer.training.good_samples_per_drive *
      std::max(1, window_weeks);
  std::unique_ptr<core::SampleScorer> scorer;
  std::size_t rows = 0;
  try {
    const obs::ScopedSpan train_span("pipeline.train");
    const auto matrix = data::build_training_matrix(train_ds, train_split, tc);
    rows = matrix.rows();
    scorer = core::fit_scorer(config.trainer, matrix);
  } catch (const std::exception& e) {
    res.outcome = Outcome::kRejectedTrainFailed;
    res.reason = e.what();
    return res;
  }
  res.train_rows = rows;

  const obs::ScopedSpan gate_span("pipeline.gate");

  // Gate 1: the static verifier. Tree-backed candidates are linted; other
  // backends have their own verifier run at load time and pass through
  // here (the guardrail still protects them).
  if (config.guardrail.require_lint_clean) {
    if (const tree::DecisionTree* t = scorer->tree()) {
      const auto report =
          analysis::verify_tree(*t, config.verify, "candidate");
      if (report.has_findings()) {
        res.outcome = Outcome::kRejectedLint;
        res.reason = first_finding(report);
        return res;
      }
    }
  }

  // Gate 2: FAR/FDR rails on the held-back validation slice.
  data::DriveDataset val_ds;
  val_ds.family_names = {family};
  data::DatasetSplit val_split;
  for (std::size_t i = n_train_good; i < goods.size(); ++i) {
    auto& g = goods[gperm[i]];
    if (g.empty()) continue;
    val_split.good_drives.push_back(val_ds.drives.size());
    val_split.good_test_begin.push_back(0);  // the whole window is test data
    val_ds.drives.push_back(std::move(g));
  }
  for (std::size_t k = n_train_failed; k < failed_pool.size(); ++k) {
    if (failed_pool[fperm[k]].empty()) continue;
    val_split.test_failed.push_back(val_ds.drives.size());
    val_ds.drives.push_back(failed_pool[fperm[k]]);
  }
  const core::SampleScorer* raw = scorer.get();
  const auto result = eval::evaluate_batch(
      val_ds, val_split, tc.features,
      [raw](std::span<const float> xs, std::span<double> out) {
        raw->predict_batch(xs, out);
      },
      config.trainer.vote);
  res.val_far = result.far();
  res.val_fdr = result.fdr();
  // A rail is only meaningful when its side of the validation slice holds
  // drives to measure it on.
  if (result.n_good > 0 && res.val_far > config.guardrail.max_far) {
    res.outcome = Outcome::kRejectedGuardrail;
    std::ostringstream os;
    os << "validation FAR " << res.val_far << " > max_far "
       << config.guardrail.max_far;
    res.reason = os.str();
    return res;
  }
  if (result.n_failed > 0 && res.val_fdr < config.guardrail.min_fdr) {
    res.outcome = Outcome::kRejectedGuardrail;
    std::ostringstream os;
    os << "validation FDR " << res.val_fdr << " < min_fdr "
       << config.guardrail.min_fdr;
    res.reason = os.str();
    return res;
  }

  res.outcome = Outcome::kPromoted;
  res.candidate = std::shared_ptr<const core::SampleScorer>(std::move(scorer));
  return res;
}

std::shared_ptr<const core::SampleScorer> load_generation_model(
    const std::string& model_text) {
  std::istringstream is(model_text);
  // The model was linted at promotion time; a strict re-verify here could
  // wedge resume on a rule added since, so load as-is.
  core::LoadOptions load;
  load.verify = core::VerifyMode::kOff;
  return core::make_model_scorer(core::load_model(is, load));
}

UpdatePipeline::UpdatePipeline(core::SwappableScorer& scorer,
                               store::TelemetryStore& store,
                               std::vector<smart::DriveRecord> failed_pool,
                               PipelineConfig config)
    : scorer_(&scorer),
      store_(&store),
      failed_(std::move(failed_pool)),
      config_(std::move(config)),
      scheduler_(config_.scheduler),
      metrics_(make_pipeline_metrics(config_.metrics)) {
  metrics_.generation->set(static_cast<double>(scorer_->generation()));
}

CycleResult UpdatePipeline::run_cycle(bool force) {
  const obs::ScopedSpan span("pipeline.cycle");
  CycleResult r;
  r.generation = scorer_->generation();
  const std::uint64_t total = store_->sample_count();
  const std::int64_t last = store_->last_hour();
  if (!force && !scheduler_.due(total, last)) {
    r.outcome = Outcome::kSkipped;
    return r;
  }
  const auto window = scheduler_.window_hours(std::max<std::int64_t>(last, 0));
  std::vector<smart::DriveRecord> goods(store_->drive_count());
  for (std::uint32_t id = 0; id < goods.size(); ++id) {
    goods[id].serial = store_->drive(id).serial;
    goods[id].samples =
        store_->read_drive(id, window.first, window.second - 1);
  }
  const int weeks = static_cast<int>((window.second - window.first) / 168);
  auto gate = train_and_gate(std::move(goods), failed_, weeks, config_);
  scheduler_.mark(total, last);
  r.outcome = gate.outcome;
  r.val_far = gate.val_far;
  r.val_fdr = gate.val_fdr;
  r.reason = std::move(gate.reason);
  metrics_.record(r.outcome);
  if (r.outcome == Outcome::kPromoted) {
    std::ostringstream os;
    gate.candidate->save(os);
    const std::uint64_t next_gen = scorer_->generation() + 1;
    // Journal-first promotion: once the record is durable the swap is a
    // formality — a crash between the two resumes to `next_gen`.
    store_->append_generation(next_gen, os.str());
    scorer_->swap(std::move(gate.candidate), next_gen);
    metrics_.generation->set(static_cast<double>(next_gen));
    r.generation = next_gen;
    log_debug() << "pipeline: promoted generation " << next_gen
                << " (val FAR " << r.val_far << ", FDR " << r.val_fdr << ")";
  } else if (r.outcome != Outcome::kSkipped) {
    log_debug() << "pipeline: candidate " << outcome_name(r.outcome) << ": "
                << r.reason;
  }
  last_ = r;
  return r;
}

}  // namespace hdd::pipeline
