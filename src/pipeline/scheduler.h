// Retrain scheduling for the continuous model-update pipeline.
//
// The paper's Section V-B3 updating strategies decide *which* telemetry a
// refreshed model trains on:
//   fixed        — train once on week 1, never update;
//   accumulation — retrain on all good samples seen so far;
//   replacing    — every c weeks, retrain on only the last completed cycle.
// This header is the one implementation of that stepping logic: the offline
// simulation in update/strategies.cpp and the live background pipeline both
// derive their training windows from training_range(), so the strategies
// cannot drift apart. RetrainScheduler adds the *when*: a live loop retrains
// on a wall-clock (telemetry-hour) interval or an ingested-sample count,
// whichever fires first.
#pragma once

#include <cstdint>
#include <utility>

namespace hdd::pipeline {

enum class Strategy { kFixed, kAccumulation, kReplacing };

// "fixed" / "accumulation" / "replacing".
const char* strategy_name(Strategy s);

// The training weeks a strategy uses before predicting test week
// `test_week` (1-based weeks; test weeks run 2..last). Returns [from, to)
// in weeks. For kReplacing, the last fully observed cycle of
// `replace_cycle_weeks`; until one completes, everything observed so far.
std::pair<int, int> training_range(Strategy s, int replace_cycle_weeks,
                                   int test_week);

struct SchedulerConfig {
  Strategy strategy = Strategy::kAccumulation;
  int replace_cycle_weeks = 1;  // c, for kReplacing

  // Retrain triggers; 0 disables a trigger. Hours are telemetry hours (the
  // store's sample clock), not host wall-clock, so offline replays and live
  // ingest schedule identically.
  std::int64_t retrain_every_hours = 168;
  std::uint64_t retrain_every_samples = 0;
};

// Decides when a retrain cycle is due and which store window it trains on.
// Single-threaded by contract (owned by the pipeline's control loop).
class RetrainScheduler {
 public:
  explicit RetrainScheduler(SchedulerConfig config);

  const SchedulerConfig& config() const { return config_; }

  // True when either trigger has advanced past the last mark(). A fixed
  // strategy never retrains once a generation has been marked.
  [[nodiscard]] bool due(std::uint64_t total_samples,
                         std::int64_t last_hour) const;

  // Records that a cycle ran (promoted or rejected) at this watermark.
  void mark(std::uint64_t total_samples, std::int64_t last_hour);

  // The strategy's training window as store hours [from_hour, to_hour),
  // for a retrain at telemetry watermark `last_hour`.
  std::pair<std::int64_t, std::int64_t> window_hours(
      std::int64_t last_hour) const;

 private:
  SchedulerConfig config_;
  bool marked_ = false;
  std::uint64_t marked_samples_ = 0;
  std::int64_t marked_hour_ = 0;
};

}  // namespace hdd::pipeline
