#include "forest/random_forest.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace hdd::forest {

void ForestConfig::validate() const {
  HDD_REQUIRE(n_trees >= 1, "n_trees must be >= 1");
  HDD_REQUIRE(feature_fraction > 0.0 && feature_fraction <= 1.0,
              "feature_fraction must be in (0,1]");
  HDD_REQUIRE(sample_fraction > 0.0 && sample_fraction <= 1.0,
              "sample_fraction must be in (0,1]");
  tree_params.validate();
}

void RandomForest::fit(const data::DataMatrix& m, tree::Task task,
                       const ForestConfig& config) {
  config.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit a forest on an empty matrix");
  num_features_ = m.cols();
  trees_.assign(static_cast<std::size_t>(config.n_trees), {});

  const int n_sub_features = std::max(
      1, static_cast<int>(std::round(config.feature_fraction * m.cols())));
  const auto n_rows = static_cast<std::size_t>(std::max<double>(
      1.0, std::round(config.sample_fraction *
                      static_cast<double>(m.rows()))));

  ThreadPool::global().parallel_for(
      0, trees_.size(), [&](std::size_t t) {
        Rng rng(hash_combine(config.seed, t));

        // Random feature subspace.
        std::vector<int> all_features(static_cast<std::size_t>(m.cols()));
        for (int f = 0; f < m.cols(); ++f)
          all_features[static_cast<std::size_t>(f)] = f;
        const auto perm = rng.permutation(all_features.size());
        std::vector<int> chosen;
        chosen.reserve(static_cast<std::size_t>(n_sub_features));
        for (int k = 0; k < n_sub_features; ++k)
          chosen.push_back(all_features[perm[static_cast<std::size_t>(k)]]);
        std::sort(chosen.begin(), chosen.end());

        // Bootstrap rows into a projected matrix.
        data::DataMatrix boot(n_sub_features);
        boot.reserve(n_rows);
        std::vector<float> row(static_cast<std::size_t>(n_sub_features));
        for (std::size_t i = 0; i < n_rows; ++i) {
          const std::size_t r = rng.uniform_int(m.rows());
          const auto src = m.row(r);
          for (std::size_t f = 0; f < chosen.size(); ++f) {
            row[f] = src[static_cast<std::size_t>(chosen[f])];
          }
          boot.add_row(row, m.target(r), m.weight(r));
        }

        trees_[t].features = std::move(chosen);
        trees_[t].tree.fit(boot, task, config.tree_params);
      });
}

double RandomForest::predict(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "predict on an untrained forest");
  double total = 0.0;
  std::vector<float> sub;
  for (const Member& member : trees_) {
    sub.resize(member.features.size());
    for (std::size_t f = 0; f < member.features.size(); ++f) {
      sub[f] = x[static_cast<std::size_t>(member.features[f])];
    }
    total += member.tree.predict(sub);
  }
  return total / static_cast<double>(trees_.size());
}

void RandomForest::predict_batch(std::span<const float> xs,
                                 std::span<double> out) const {
  HDD_ASSERT_MSG(trained(), "predict_batch on an untrained forest");
  const auto nf = static_cast<std::size_t>(num_features_);
  HDD_ASSERT(xs.size() == out.size() * nf);
  std::fill(out.begin(), out.end(), 0.0);
  std::vector<float> sub;
  for (const Member& member : trees_) {
    sub.resize(member.features.size());
    for (std::size_t r = 0; r < out.size(); ++r) {
      const float* x = xs.data() + r * nf;
      for (std::size_t f = 0; f < member.features.size(); ++f) {
        sub[f] = x[static_cast<std::size_t>(member.features[f])];
      }
      out[r] += member.tree.predict(sub);
    }
  }
  const auto n_trees = static_cast<double>(trees_.size());
  for (double& v : out) v /= n_trees;
}

void RandomForest::predict_batch(const data::DataMatrix& m,
                                 std::span<double> out) const {
  HDD_ASSERT(m.rows() == out.size());
  HDD_ASSERT(m.cols() == num_features_);
  predict_batch(m.features(), out);
}

void RandomForest::save(std::ostream& os) const {
  HDD_REQUIRE(trained(), "cannot save an untrained forest");
  os << "hddpred-forest v1\n";
  os << "features " << num_features_ << '\n';
  os << "trees " << trees_.size() << '\n';
  for (const Member& member : trees_) {
    os << "subspace";
    for (int f : member.features) os << ' ' << f;
    os << '\n';
    member.tree.save(os);
  }
}

RandomForest RandomForest::load(std::istream& is) {
  std::string line, word;
  if (!std::getline(is, line) || line != "hddpred-forest v1") {
    throw DataError("not a hddpred-forest v1 file");
  }
  RandomForest forest;
  std::size_t count = 0;
  {
    if (!std::getline(is, line)) throw DataError("forest file truncated");
    std::istringstream ls(line);
    ls >> word >> forest.num_features_;
    if (ls.fail() || word != "features" || forest.num_features_ <= 0) {
      throw DataError("bad features line");
    }
    if (forest.num_features_ > tree::kMaxLoadFeatures) {
      throw ParseError("forest features",
                       static_cast<std::uint64_t>(forest.num_features_),
                       tree::kMaxLoadFeatures);
    }
  }
  {
    if (!std::getline(is, line)) throw DataError("forest file truncated");
    std::istringstream ls(line);
    ls >> word >> count;
    if (ls.fail() || word != "trees" || count == 0) {
      throw DataError("bad trees line");
    }
    if (count > kMaxLoadMembers) {
      throw ParseError("forest trees", count, kMaxLoadMembers);
    }
  }
  forest.trees_.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    if (!std::getline(is, line)) throw DataError("forest file truncated");
    std::istringstream ls(line);
    ls >> word;
    if (word != "subspace") throw DataError("bad subspace line");
    Member member;
    int f;
    while (ls >> f) {
      if (f < 0 || f >= forest.num_features_) {
        throw DataError("subspace feature out of range");
      }
      member.features.push_back(f);
    }
    if (member.features.empty()) throw DataError("empty subspace");
    member.tree = tree::DecisionTree::load(is);
    if (member.tree.num_features() !=
        static_cast<int>(member.features.size())) {
      throw DataError("tree width does not match its subspace");
    }
    forest.trees_.push_back(std::move(member));
  }
  return forest;
}

std::vector<double> RandomForest::feature_importance() const {
  std::vector<double> imp(static_cast<std::size_t>(num_features_), 0.0);
  for (const Member& member : trees_) {
    const auto sub_imp = member.tree.feature_importance();
    for (std::size_t f = 0; f < member.features.size(); ++f) {
      imp[static_cast<std::size_t>(member.features[f])] += sub_imp[f];
    }
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace hdd::forest
