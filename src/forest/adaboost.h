// AdaBoost.M1 over shallow CARTs — the boosting approach the paper's
// predecessor [11] evaluated (and found costly for little gain); included
// so the comparison can be reproduced as an ablation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tree/tree.h"

namespace hdd::forest {

struct AdaBoostConfig {
  int n_rounds = 30;
  tree::TreeParams weak_params;  // depth-limited weak learner
  std::uint64_t seed = 777;

  AdaBoostConfig() { weak_params.max_depth = 3; }
  void validate() const;
};

class AdaBoost {
 public:
  struct Member {
    tree::DecisionTree tree;
    double alpha = 0.0;
  };

  AdaBoost() = default;

  // Binary classification only (targets +1/-1). Initial sample weights are
  // taken from the matrix, so prior/loss adjustments carry through.
  void fit(const data::DataMatrix& m, const AdaBoostConfig& config);

  // Assembles an ensemble from already-trained weak learners (tests, model
  // surgery). Validates shapes only (trained trees, equal widths) — vote
  // soundness, e.g. a member whose alpha dominates the rest, is
  // analysis::verify_adaboost's job. Throws ConfigError on shape errors.
  static AdaBoost from_members(std::vector<Member> members);

  bool trained() const { return !members_.empty(); }
  std::size_t round_count() const { return members_.size(); }
  const std::vector<Member>& members() const { return members_; }

  // Weighted-vote margin normalized to [-1, 1]; negative = failed.
  double predict(std::span<const float> x) const;
  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

  // Batch prediction over row-major rows (`xs.size()` must equal
  // `out.size() * num_features` of the weak learners). Member-outer
  // iteration with the same per-row accumulation order as predict(), so
  // outputs are bit-identical.
  void predict_batch(std::span<const float> xs, std::span<double> out) const;
  void predict_batch(const data::DataMatrix& m, std::span<double> out) const;

 private:
  std::vector<Member> members_;
};

}  // namespace hdd::forest
