// Ensemble extensions — the paper's future work ("we will try other
// statistical and machine learning methods, such as random forest").
//
// RandomForest: bootstrap-aggregated CARTs with per-tree random feature
// subspaces; prediction is the mean of tree outputs (soft vote), which
// keeps the [-1, 1] margin convention of the rest of the library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "tree/tree.h"

namespace hdd::forest {

// Hard ceiling on the member count a persisted forest file may declare;
// load() rejects larger headers with hdd::ParseError before reserving
// anything (each member also carries a full tree, itself bounded by
// tree::kMaxLoadNodes).
inline constexpr std::size_t kMaxLoadMembers = 4096;

struct ForestConfig {
  int n_trees = 40;
  // Fraction of features each tree sees (random subspace per tree).
  double feature_fraction = 0.6;
  // Bootstrap sample size as a fraction of the training rows.
  double sample_fraction = 1.0;
  tree::TreeParams tree_params;
  std::uint64_t seed = 4096;

  void validate() const;
};

class RandomForest {
 public:
  RandomForest() = default;

  void fit(const data::DataMatrix& m, tree::Task task,
           const ForestConfig& config);

  bool trained() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }
  int num_features() const { return num_features_; }

  // Member access for the static verifier (analysis/) and tests: the i-th
  // tree operates on the subspace columns returned by member_features
  // (member column -> original column).
  const tree::DecisionTree& member_tree(std::size_t i) const {
    return trees_[i].tree;
  }
  std::span<const int> member_features(std::size_t i) const {
    return trees_[i].features;
  }

  // Mean tree output; negative = failed.
  double predict(std::span<const float> x) const;
  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

  // Batch prediction over row-major rows (`xs.size()` must equal
  // `out.size() * num_features()`). Iterates members in the outer loop so
  // each tree and its feature gather stay cache-hot across the whole block;
  // per-row accumulation order matches predict(), so outputs are
  // bit-identical.
  void predict_batch(std::span<const float> xs, std::span<double> out) const;
  void predict_batch(const data::DataMatrix& m, std::span<double> out) const;

  // Importance averaged over trees (mapped back to the full feature space).
  std::vector<double> feature_importance() const;

  // Line-oriented text persistence ("hddpred-forest v1"); each member tree
  // is embedded in the hddpred-tree format.
  void save(std::ostream& os) const;
  static RandomForest load(std::istream& is);  // throws DataError

 private:
  struct Member {
    tree::DecisionTree tree;
    std::vector<int> features;  // subspace: member col -> original col
  };
  std::vector<Member> trees_;
  int num_features_ = 0;
};

}  // namespace hdd::forest
