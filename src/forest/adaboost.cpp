#include "forest/adaboost.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"

namespace hdd::forest {

void AdaBoostConfig::validate() const {
  HDD_REQUIRE(n_rounds >= 1, "n_rounds must be >= 1");
  weak_params.validate();
}

AdaBoost AdaBoost::from_members(std::vector<Member> members) {
  HDD_REQUIRE(!members.empty(), "from_members: member list is empty");
  const int width = members.front().tree.num_features();
  for (const Member& m : members) {
    HDD_REQUIRE(m.tree.trained(), "from_members: untrained member tree");
    HDD_REQUIRE(m.tree.num_features() == width,
                "from_members: member trees disagree on feature count");
  }
  AdaBoost boost;
  boost.members_ = std::move(members);
  return boost;
}

void AdaBoost::fit(const data::DataMatrix& m, const AdaBoostConfig& config) {
  config.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit AdaBoost on an empty matrix");
  members_.clear();

  // Working copy of the matrix whose weights evolve round to round.
  data::DataMatrix work(m.cols());
  work.reserve(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    work.add_row(m.row(r), m.target(r), m.weight(r));
  }

  for (int round = 0; round < config.n_rounds; ++round) {
    Member member;
    member.tree.fit(work, tree::Task::kClassification, config.weak_params);

    // Weighted error of the weak learner.
    double err = 0.0, total = 0.0;
    std::vector<int> labels(work.rows());
    for (std::size_t r = 0; r < work.rows(); ++r) {
      labels[r] = member.tree.predict_label(work.row(r));
      const bool wrong = (labels[r] < 0) != (work.target(r) < 0.0f);
      total += work.weight(r);
      if (wrong) err += work.weight(r);
    }
    if (total <= 0.0) break;
    err /= total;
    if (err >= 0.5) break;                      // weak learner no better than chance
    err = std::max(err, 1e-10);
    member.alpha = 0.5 * std::log((1.0 - err) / err);

    // Reweight: boost the misclassified.
    double new_total = 0.0;
    for (std::size_t r = 0; r < work.rows(); ++r) {
      const bool wrong = (labels[r] < 0) != (work.target(r) < 0.0f);
      const double w = work.weight(r) *
                       std::exp(wrong ? member.alpha : -member.alpha);
      work.set_weight(r, static_cast<float>(w));
      new_total += w;
    }
    // Normalize to keep weights in a sane float range.
    if (new_total > 0.0) {
      const double scale = total / new_total;
      for (std::size_t r = 0; r < work.rows(); ++r) {
        work.set_weight(r, static_cast<float>(work.weight(r) * scale));
      }
    }

    const bool perfect = err <= 1e-9;
    members_.push_back(std::move(member));
    if (perfect) break;
  }
  HDD_REQUIRE(!members_.empty(),
              "AdaBoost found no weak learner better than chance");
}

double AdaBoost::predict(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "predict on an untrained AdaBoost");
  double vote = 0.0, norm = 0.0;
  for (const Member& member : members_) {
    vote += member.alpha *
            static_cast<double>(member.tree.predict_label(x));
    norm += member.alpha;
  }
  return norm > 0.0 ? vote / norm : 0.0;
}

void AdaBoost::predict_batch(std::span<const float> xs,
                             std::span<double> out) const {
  HDD_ASSERT_MSG(trained(), "predict_batch on an untrained AdaBoost");
  const auto nf =
      static_cast<std::size_t>(members_.front().tree.num_features());
  HDD_ASSERT(xs.size() == out.size() * nf);
  std::fill(out.begin(), out.end(), 0.0);
  double norm = 0.0;
  for (const Member& member : members_) {
    for (std::size_t r = 0; r < out.size(); ++r) {
      const std::span<const float> x{xs.data() + r * nf, nf};
      out[r] += member.alpha *
                static_cast<double>(member.tree.predict_label(x));
    }
    norm += member.alpha;
  }
  for (double& v : out) v = norm > 0.0 ? v / norm : 0.0;
}

void AdaBoost::predict_batch(const data::DataMatrix& m,
                             std::span<double> out) const {
  HDD_ASSERT(m.rows() == out.size());
  HDD_ASSERT(!members_.empty() &&
             m.cols() == members_.front().tree.num_features());
  predict_batch(m.features(), out);
}

}  // namespace hdd::forest
