#include "data/matrix.h"

#include "common/error.h"

namespace hdd::data {

void DataMatrix::reserve(std::size_t rows) {
  x_.reserve(rows * static_cast<std::size_t>(cols_));
  y_.reserve(rows);
  w_.reserve(rows);
}

void DataMatrix::add_row(std::span<const float> x, float y, float w) {
  HDD_ASSERT(static_cast<int>(x.size()) == cols_);
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(y);
  w_.push_back(w);
}

double DataMatrix::weight_of_class(bool failed) const {
  double total = 0.0;
  for (std::size_t i = 0; i < rows(); ++i) {
    if ((y_[i] < 0.0f) == failed) total += w_[i];
  }
  return total;
}

void DataMatrix::scale_class_weight(bool failed, double factor) {
  for (std::size_t i = 0; i < rows(); ++i) {
    if ((y_[i] < 0.0f) == failed) {
      w_[i] = static_cast<float>(w_[i] * factor);
    }
  }
}

}  // namespace hdd::data
