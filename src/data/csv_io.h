// Dataset import/export.
//
// Schema (one row per sample, header required):
//   serial,family,failed,fail_hour,hour,RRER,SUT,RSC,SER,POH,RUE,HFW,TC,
//   HER,CPS,RSC_raw,CPS_raw
//
// `family` is the family name (e.g. "W"); `failed` is 0/1; `fail_hour` is
// empty or -1 for good drives. Rows for one drive must be contiguous and
// chronological. This is the bridge for feeding real SMART dumps (e.g.
// Backblaze daily exports resampled to hours) into the pipeline.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace hdd::data {

void save_csv(const DriveDataset& dataset, std::ostream& os);
void save_csv_file(const DriveDataset& dataset, const std::string& path);

DriveDataset load_csv(std::istream& is);
DriveDataset load_csv_file(const std::string& path);

}  // namespace hdd::data
