#include "data/training.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace hdd::data {

DataMatrix build_training_matrix(const DriveDataset& dataset,
                                 const DatasetSplit& split,
                                 const TrainingConfig& config,
                                 const FailedTargetFn& failed_target,
                                 const FailedWindowFn& failed_window) {
  // Training runs cold, so the registry lookup per call is fine.
  obs::Registry& reg = obs::Registry::global();
  const obs::ScopedTimer timer(&reg.histogram(
      "hdd_train_build_matrix_ns", "build_training_matrix wall time (ns)."));
  obs::Counter& rows = reg.counter("hdd_train_matrix_rows_total",
                                   "Rows emitted into training matrices.");
  HDD_REQUIRE(!config.features.specs.empty(), "empty feature set");
  HDD_REQUIRE(config.good_samples_per_drive > 0,
              "good_samples_per_drive must be positive");
  HDD_REQUIRE(config.failed_window_hours > 0,
              "failed_window_hours must be positive");

  DataMatrix m(config.features.size());
  Rng rng(config.seed);

  // Good samples: random draws from each good drive's train period.
  for (std::size_t k = 0; k < split.good_drives.size(); ++k) {
    const auto& d = dataset.drives[split.good_drives[k]];
    const std::size_t train_end = split.good_test_begin[k];
    if (train_end == 0) continue;
    for (int s = 0; s < config.good_samples_per_drive; ++s) {
      const std::size_t idx = rng.uniform_int(train_end);
      const auto row = smart::extract_features(d, idx, config.features);
      m.add_row(*row, config.good_target, 1.0f);
    }
  }

  // Failed samples: everything (or an even subset) within the time window.
  for (std::size_t di : split.train_failed) {
    const auto& d = dataset.drives[di];
    if (d.empty()) continue;
    const int window =
        failed_window ? failed_window(d) : config.failed_window_hours;
    std::vector<std::size_t> in_window;
    for (std::size_t i = 0; i < d.samples.size(); ++i) {
      const std::int64_t before = d.fail_hour - d.samples[i].hour;
      if (before >= 0 && before <= window) {
        in_window.push_back(i);
      }
    }
    if (in_window.empty()) continue;

    std::vector<std::size_t> chosen;
    if (config.failed_samples_per_drive > 0 &&
        static_cast<std::size_t>(config.failed_samples_per_drive) <
            in_window.size()) {
      const auto want =
          static_cast<std::size_t>(config.failed_samples_per_drive);
      for (std::size_t j = 0; j < want; ++j) {
        // Evenly spaced over the window, first and last included.
        const std::size_t pos =
            want == 1 ? in_window.size() - 1
                      : j * (in_window.size() - 1) / (want - 1);
        chosen.push_back(in_window[pos]);
      }
      chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    } else {
      chosen = in_window;
    }

    for (std::size_t idx : chosen) {
      const auto row = smart::extract_features(d, idx, config.features);
      float target = config.failed_target;
      if (failed_target) {
        target = failed_target(d, d.fail_hour - d.samples[idx].hour);
      }
      m.add_row(*row, target, 1.0f);
    }
  }

  HDD_REQUIRE(m.rows() > 0, "training matrix is empty");
  rows.inc(m.rows());

  // Prior adjustment: boost the failed class to `failed_prior` of the total
  // weight (the paper's 20/80 redistribution).
  if (config.failed_prior > 0.0) {
    const double wf = m.weight_of_class(true);
    const double wg = m.weight_of_class(false);
    if (wf > 0.0 && wg > 0.0) {
      const double factor =
          config.failed_prior / (1.0 - config.failed_prior) * wg / wf;
      m.scale_class_weight(true, factor);
    }
  }

  // Loss matrix via altered priors: a false alarm costs `loss_false_alarm`,
  // a missed detection costs `loss_missed_detection`.
  if (config.loss_false_alarm != 1.0) {
    m.scale_class_weight(false, config.loss_false_alarm);
  }
  if (config.loss_missed_detection != 1.0) {
    m.scale_class_weight(true, config.loss_missed_detection);
  }
  return m;
}

}  // namespace hdd::data
