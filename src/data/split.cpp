#include "data/split.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace hdd::data {

DatasetSplit split_dataset(const DriveDataset& dataset,
                           const SplitConfig& config) {
  HDD_REQUIRE(config.train_fraction > 0.0 && config.train_fraction < 1.0,
              "train_fraction must be in (0,1)");
  DatasetSplit split;
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < dataset.drives.size(); ++i) {
    const auto& d = dataset.drives[i];
    if (d.empty()) continue;
    if (d.failed) {
      failed.push_back(i);
    } else {
      split.good_drives.push_back(i);
      const auto n = d.samples.size();
      auto cut = static_cast<std::size_t>(
          std::floor(static_cast<double>(n) * config.train_fraction));
      cut = std::min(cut, n);  // all-train degenerate case guarded below
      split.good_test_begin.push_back(cut);
    }
  }

  Rng rng(config.seed);
  const auto perm = rng.permutation(failed.size());
  const auto n_train = static_cast<std::size_t>(
      std::round(static_cast<double>(failed.size()) * config.train_fraction));
  for (std::size_t k = 0; k < failed.size(); ++k) {
    if (k < n_train) {
      split.train_failed.push_back(failed[perm[k]]);
    } else {
      split.test_failed.push_back(failed[perm[k]]);
    }
  }
  std::sort(split.train_failed.begin(), split.train_failed.end());
  std::sort(split.test_failed.begin(), split.test_failed.end());
  return split;
}

DriveDataset subsample_drives(const DriveDataset& dataset, double fraction,
                              std::uint64_t seed) {
  HDD_REQUIRE(fraction > 0.0 && fraction <= 1.0,
              "fraction must be in (0,1]");
  std::vector<std::size_t> good, failed;
  for (std::size_t i = 0; i < dataset.drives.size(); ++i) {
    (dataset.drives[i].failed ? failed : good).push_back(i);
  }
  Rng rng(seed);
  auto pick = [&](std::vector<std::size_t>& pool) {
    const auto keep = static_cast<std::size_t>(
        std::round(static_cast<double>(pool.size()) * fraction));
    const auto perm = rng.permutation(pool.size());
    std::vector<std::size_t> chosen;
    chosen.reserve(keep);
    for (std::size_t k = 0; k < keep; ++k) chosen.push_back(pool[perm[k]]);
    std::sort(chosen.begin(), chosen.end());
    return chosen;
  };
  DriveDataset out;
  out.family_names = dataset.family_names;
  for (std::size_t i : pick(good)) out.drives.push_back(dataset.drives[i]);
  for (std::size_t i : pick(failed)) out.drives.push_back(dataset.drives[i]);
  return out;
}

}  // namespace hdd::data
