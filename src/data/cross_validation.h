// Drive-stratified k-fold cross-validation.
//
// Hyper-parameter selection (time window, CP, loss weights...) must split
// *by drive*, never by sample — samples of one drive are heavily
// correlated, and the paper's own protocol keeps drives intact across the
// train/test boundary. Folds are stratified so each holds ~1/k of the good
// drives and ~1/k of the failed drives; good drives additionally keep the
// chronological train/test cut inside each fold.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/split.h"

namespace hdd::data {

struct CrossValidationConfig {
  int folds = 5;
  std::uint64_t seed = 4242;

  void validate() const;
};

// One fold: a DatasetSplit whose train side is the other k-1 folds and
// whose test side is this fold's drives.
std::vector<DatasetSplit> make_folds(const DriveDataset& dataset,
                                     const CrossValidationConfig& config);

// Convenience: runs `evaluate(fold_split)` for every fold and returns the
// per-fold values (e.g. FDR or FAR), for mean/stddev reporting.
std::vector<double> cross_validate(
    const DriveDataset& dataset, const CrossValidationConfig& config,
    const std::function<double(const DatasetSplit&)>& evaluate);

}  // namespace hdd::data
