// Training-set construction (Section V-A1 and V-A3):
//
//  * 3 random samples per good drive from its train period — eliminates the
//    bias of any single hour while describing the drive's health;
//  * failed samples from the last `failed_window_hours` before the failure
//    (the "time window" of Table IV), optionally thinned to a fixed count
//    per drive (the RT model uses 12 evenly spaced samples);
//  * class reweighting: failed samples boosted to `failed_prior` of total
//    weight, then good samples scaled by the false-alarm loss weight
//    (the paper's 10:1 loss matrix, encoded as altered priors).
#pragma once

#include <cstdint>
#include <functional>

#include "data/dataset.h"
#include "data/matrix.h"
#include "data/split.h"
#include "smart/features.h"

namespace hdd::data {

struct TrainingConfig {
  smart::FeatureSet features;

  int good_samples_per_drive = 3;
  int failed_window_hours = 168;
  // 0 = every sample inside the window; >0 = this many, evenly spaced.
  int failed_samples_per_drive = 0;

  // Weighting. failed_prior <= 0 disables prior adjustment.
  double failed_prior = 0.20;
  double loss_false_alarm = 10.0;  // multiplies good-sample weights
  double loss_missed_detection = 1.0;

  float good_target = 1.0f;
  float failed_target = -1.0f;

  std::uint64_t seed = 99;
};

// Optional override for failed-sample targets (used by the health-degree
// model, Eq. 5/6): receives the drive and the hours-before-failure of the
// sample, returns the regression target.
using FailedTargetFn =
    std::function<float(const smart::DriveRecord&, std::int64_t hours_before)>;

// Optional per-drive override of the failed time window (the personalized
// deterioration window of Eq. 6). Returns the window in hours.
using FailedWindowFn = std::function<int(const smart::DriveRecord&)>;

// Builds the weighted training matrix from the train side of `split`.
DataMatrix build_training_matrix(const DriveDataset& dataset,
                                 const DatasetSplit& split,
                                 const TrainingConfig& config,
                                 const FailedTargetFn& failed_target = {},
                                 const FailedWindowFn& failed_window = {});

}  // namespace hdd::data
