// Dataset container: a fleet of drive observation records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smart/drive.h"

namespace hdd::data {

// A collection of drive records plus family metadata. This is the unit the
// splitting / training / evaluation pipeline operates on.
struct DriveDataset {
  std::vector<std::string> family_names;  // e.g. {"W", "Q"}
  std::vector<smart::DriveRecord> drives;

  std::size_t size() const { return drives.size(); }

  std::size_t count_good(int family = -1) const;
  std::size_t count_failed(int family = -1) const;
  std::size_t count_samples(bool failed, int family = -1) const;

  // Returns the subset belonging to one family (copies records).
  DriveDataset family_subset(int family) const;

  // Appends all drives of another dataset (family indices are remapped).
  void append(const DriveDataset& other);
};

}  // namespace hdd::data
