// Row-major feature matrix with targets and per-sample weights — the input
// to every trainer (tree, forest, ANN).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hdd::data {

class DataMatrix {
 public:
  DataMatrix() = default;
  explicit DataMatrix(int cols) : cols_(cols) {}

  int cols() const { return cols_; }
  std::size_t rows() const { return y_.size(); }
  bool empty() const { return y_.empty(); }

  void reserve(std::size_t rows);

  // Appends one sample. `x.size()` must equal cols().
  void add_row(std::span<const float> x, float y, float w = 1.0f);

  std::span<const float> row(std::size_t i) const {
    return {x_.data() + i * static_cast<std::size_t>(cols_),
            static_cast<std::size_t>(cols_)};
  }
  float target(std::size_t i) const { return y_[i]; }
  float weight(std::size_t i) const { return w_[i]; }
  void set_weight(std::size_t i, float w) { w_[i] = w; }
  void set_target(std::size_t i, float y) { y_[i] = y; }

  std::span<const float> targets() const { return y_; }
  std::span<const float> weights() const { return w_; }

  // The whole feature block, row-major (rows() x cols()) — the input to the
  // models' predict_batch fast paths.
  std::span<const float> features() const { return x_; }

  // Sum of weights of rows with target < 0 / >= 0 (class masses for the
  // binary convention: failed = -1, good = +1).
  double weight_of_class(bool failed) const;

  // Multiplies the weight of every row in the given class.
  void scale_class_weight(bool failed, double factor);

 private:
  int cols_ = 0;
  std::vector<float> x_;
  std::vector<float> y_;
  std::vector<float> w_;
};

}  // namespace hdd::data
