// Train/test splitting the way the paper does it (Section V-A1):
//
//  * good drives are split *chronologically*: the earlier `train_fraction`
//    of each drive's samples train, the later part tests — models must
//    predict the future, not interpolate it;
//  * failed drives are split *by drive* at random (their chronological
//    order was not recorded), 70/30.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace hdd::data {

struct SplitConfig {
  double train_fraction = 0.7;
  std::uint64_t seed = 7;
};

struct DatasetSplit {
  // Parallel arrays over good drives: dataset index + the first sample
  // index that belongs to the test period.
  std::vector<std::size_t> good_drives;
  std::vector<std::size_t> good_test_begin;

  // Failed drives by dataset index.
  std::vector<std::size_t> train_failed;
  std::vector<std::size_t> test_failed;
};

DatasetSplit split_dataset(const DriveDataset& dataset,
                           const SplitConfig& config);

// Random drive subset for the small-data-center experiments (Table V):
// keeps `fraction` of good and failed drives independently.
DriveDataset subsample_drives(const DriveDataset& dataset, double fraction,
                              std::uint64_t seed);

}  // namespace hdd::data
