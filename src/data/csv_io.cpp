#include "data/csv_io.h"

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"

namespace hdd::data {

namespace {

std::vector<std::string> header_row() {
  std::vector<std::string> h = {"serial", "family", "failed", "fail_hour",
                                "hour"};
  for (const auto& info : smart::attribute_table()) h.push_back(info.abbrev);
  return h;
}

}  // namespace

void save_csv(const DriveDataset& dataset, std::ostream& os) {
  CsvWriter w(os);
  w.write_row(header_row());
  std::vector<std::string> row;
  for (const auto& d : dataset.drives) {
    const std::string family =
        dataset.family_names[static_cast<std::size_t>(d.family)];
    for (const auto& s : d.samples) {
      row.clear();
      row.push_back(d.serial);
      row.push_back(family);
      row.push_back(d.failed ? "1" : "0");
      row.push_back(std::to_string(d.fail_hour));
      row.push_back(std::to_string(s.hour));
      for (float v : s.attrs) {
        std::ostringstream cell;
        cell << v;
        row.push_back(cell.str());
      }
      w.write_row(row);
    }
  }
}

void save_csv_file(const DriveDataset& dataset, const std::string& path) {
  std::ofstream os(path);
  HDD_REQUIRE(os.good(), "cannot open for writing: " + path);
  save_csv(dataset, os);
}

DriveDataset load_csv(std::istream& is) {
  CsvReader reader(is);
  std::vector<std::string> row;
  HDD_REQUIRE(reader.read_row(row), "empty CSV");
  const auto expected = header_row();
  if (row != expected) {
    throw DataError("CSV header does not match the dataset schema");
  }

  DriveDataset ds;
  smart::DriveRecord* current = nullptr;
  std::size_t line = 1;
  while (reader.read_row(row)) {
    ++line;
    if (row.size() == 1 && row[0].empty()) continue;  // trailing newline
    if (row.size() != expected.size()) {
      throw DataError("CSV row " + std::to_string(line) +
                      " has wrong column count");
    }
    try {
      const std::string& serial = row[0];
      const std::string& family = row[1];
      if (current == nullptr || current->serial != serial) {
        // New drive: resolve/create the family index.
        int fam = -1;
        for (std::size_t i = 0; i < ds.family_names.size(); ++i) {
          if (ds.family_names[i] == family) fam = static_cast<int>(i);
        }
        if (fam < 0) {
          fam = static_cast<int>(ds.family_names.size());
          ds.family_names.push_back(family);
        }
        ds.drives.emplace_back();
        current = &ds.drives.back();
        current->serial = serial;
        current->family = fam;
        current->failed = row[2] == "1";
        current->fail_hour = std::stoll(row[3]);
      }
      smart::Sample s;
      s.hour = std::stoll(row[4]);
      for (int a = 0; a < smart::kNumAttributes; ++a) {
        s.attrs[static_cast<std::size_t>(a)] =
            std::stof(row[static_cast<std::size_t>(5 + a)]);
      }
      if (!current->samples.empty() &&
          s.hour <= current->samples.back().hour) {
        throw DataError("samples out of chronological order");
      }
      current->samples.push_back(s);
    } catch (const DataError&) {
      throw;
    } catch (const std::exception& e) {
      throw DataError("CSV row " + std::to_string(line) + ": " + e.what());
    }
  }
  return ds;
}

DriveDataset load_csv_file(const std::string& path) {
  std::ifstream is(path);
  HDD_REQUIRE(is.good(), "cannot open for reading: " + path);
  return load_csv(is);
}

}  // namespace hdd::data
