#include "data/cross_validation.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace hdd::data {

void CrossValidationConfig::validate() const {
  HDD_REQUIRE(folds >= 2, "need at least 2 folds");
}

std::vector<DatasetSplit> make_folds(const DriveDataset& dataset,
                                     const CrossValidationConfig& config) {
  config.validate();

  std::vector<std::size_t> good, failed;
  for (std::size_t i = 0; i < dataset.drives.size(); ++i) {
    if (dataset.drives[i].empty()) continue;
    (dataset.drives[i].failed ? failed : good).push_back(i);
  }
  HDD_REQUIRE(good.size() >= static_cast<std::size_t>(config.folds) &&
                  failed.size() >= static_cast<std::size_t>(config.folds),
              "each fold needs at least one drive of each class");

  // Shuffle then deal round-robin: stratified, balanced folds.
  Rng rng(config.seed);
  auto deal = [&](std::vector<std::size_t>& pool) {
    const auto perm = rng.permutation(pool.size());
    std::vector<std::vector<std::size_t>> folds(
        static_cast<std::size_t>(config.folds));
    for (std::size_t k = 0; k < pool.size(); ++k) {
      folds[k % static_cast<std::size_t>(config.folds)].push_back(
          pool[perm[k]]);
    }
    return folds;
  };
  const auto good_folds = deal(good);
  const auto failed_folds = deal(failed);

  std::vector<DatasetSplit> splits;
  splits.reserve(static_cast<std::size_t>(config.folds));
  for (int f = 0; f < config.folds; ++f) {
    DatasetSplit split;
    // Good drives: this fold's drives are pure test — no sample of theirs
    // trains (unlike the production time-split, CV must be leak-free).
    // The other folds' drives are pure train: their whole records feed the
    // good-sample draw and they are never scored (test_begin == n).
    for (int other = 0; other < config.folds; ++other) {
      for (std::size_t di : good_folds[static_cast<std::size_t>(other)]) {
        const auto n = dataset.drives[di].samples.size();
        split.good_drives.push_back(di);
        split.good_test_begin.push_back(other == f ? 0 : n);
      }
    }
    for (int other = 0; other < config.folds; ++other) {
      for (std::size_t di : failed_folds[static_cast<std::size_t>(other)]) {
        (other == f ? split.test_failed : split.train_failed).push_back(di);
      }
    }
    std::sort(split.train_failed.begin(), split.train_failed.end());
    std::sort(split.test_failed.begin(), split.test_failed.end());
    splits.push_back(std::move(split));
  }
  return splits;
}

std::vector<double> cross_validate(
    const DriveDataset& dataset, const CrossValidationConfig& config,
    const std::function<double(const DatasetSplit&)>& evaluate) {
  HDD_REQUIRE(static_cast<bool>(evaluate), "null evaluate callback");
  const auto folds = make_folds(dataset, config);
  std::vector<double> values;
  values.reserve(folds.size());
  for (const auto& split : folds) {
    values.push_back(evaluate(split));
  }
  return values;
}

}  // namespace hdd::data
