#include "data/dataset.h"

#include <algorithm>

#include "common/error.h"

namespace hdd::data {

std::size_t DriveDataset::count_good(int family) const {
  std::size_t n = 0;
  for (const auto& d : drives)
    if (!d.failed && (family < 0 || d.family == family)) ++n;
  return n;
}

std::size_t DriveDataset::count_failed(int family) const {
  std::size_t n = 0;
  for (const auto& d : drives)
    if (d.failed && (family < 0 || d.family == family)) ++n;
  return n;
}

std::size_t DriveDataset::count_samples(bool failed, int family) const {
  std::size_t n = 0;
  for (const auto& d : drives)
    if (d.failed == failed && (family < 0 || d.family == family))
      n += d.samples.size();
  return n;
}

DriveDataset DriveDataset::family_subset(int family) const {
  HDD_REQUIRE(family >= 0 &&
                  family < static_cast<int>(family_names.size()),
              "family index out of range");
  DriveDataset out;
  out.family_names = {family_names[static_cast<std::size_t>(family)]};
  for (const auto& d : drives) {
    if (d.family == family) {
      out.drives.push_back(d);
      out.drives.back().family = 0;
    }
  }
  return out;
}

void DriveDataset::append(const DriveDataset& other) {
  const int offset = static_cast<int>(family_names.size());
  family_names.insert(family_names.end(), other.family_names.begin(),
                      other.family_names.end());
  for (const auto& d : other.drives) {
    drives.push_back(d);
    drives.back().family += offset;
  }
}

}  // namespace hdd::data
