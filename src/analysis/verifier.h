// Static model verifier — abstract interpretation over per-feature value
// intervals.
//
// A serialized model can be structurally valid (tree::from_nodes accepts
// it) yet semantically broken: leaves no input can reach, splits whose
// threshold lies outside the feasible range implied by ancestor splits or
// by the SMART attribute's declared domain (Table II: normalized values
// live on the 1–253 vendor scale), regression leaves outside the Eq. 5/6
// health-degree range, ensemble members whose vote can never change the
// ensemble sign, MLP layers with poisoned or saturating weights. Such a
// model mis-scores a fleet silently; the verifier proves these defects
// before deployment by propagating a per-feature [lo, hi] box down every
// split and checking each reachable piece of the model against it.
//
// Diagnostic codes (stable machine-readable identifiers; the taxonomy is
// documented in DESIGN.md):
//   trees:     dead-split, unreachable-leaf, leaf-value-non-finite,
//              leaf-value-out-of-range, orphan-node, negative-weight,
//              constant-sign-model
//   ensembles: inert-member, nonpositive-alpha, dominant-member
//   mlp:       non-finite-weight, invalid-scale, constant-input,
//              saturated-unit
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "smart/features.h"

namespace hdd::tree {
class DecisionTree;
}
namespace hdd::forest {
class RandomForest;
class AdaBoost;
}
namespace hdd::ann {
class MlpModel;
}

namespace hdd::analysis {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

// "note" / "warning" / "error".
const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string model_path;  // file path or logical model name
  std::string location;    // "node 7", "tree[3] node 2", "w1[h=1][f=0]"
  std::string code;        // stable defect-class identifier (see above)
  std::string message;     // human explanation with the proven interval
};

// One feature's feasible value range. Split constraints are strict
// ("x < t" goes left), so the upper bound tracks whether it is open;
// lower bounds only ever come from ">= t" or closed domain bounds.
struct Interval {
  double lo;
  double hi;
  bool hi_open = false;

  bool empty() const { return lo > hi || (lo == hi && hi_open); }
  static Interval all();
  static Interval closed(double lo, double hi);
};

// Per-feature domains the abstract interpretation starts from.
struct FeatureDomains {
  std::vector<Interval> bounds;  // empty => unbounded for every feature

  static FeatureDomains unbounded(int num_features);
  // Declared domains of a feature layout: levels take the attribute's
  // Table II range (smart::attribute_range), change rates over h hours of
  // a normalized attribute are bounded by +/- span/h (the value cannot
  // move further than its whole scale per elapsed hour), raw-counter
  // rates are unbounded.
  static FeatureDomains for_feature_set(const smart::FeatureSet& fs);
};

struct VerifyOptions {
  // Starting box; unbounded when empty. When non-empty its size must
  // match the model's feature count.
  FeatureDomains domains;
  // Admissible leaf output range: the Eq. 5/6 health degrees and the
  // classification margin both live in [-1, 1].
  double value_lo = -1.0;
  double value_hi = 1.0;
  // A hidden unit whose pre-activation provably stays beyond this |z|
  // over the whole input domain is reported as saturated (sigmoid(30) is
  // 1 within ~1e-13 — the unit is a constant).
  double saturation_z = 30.0;
};

struct Report {
  std::vector<Diagnostic> diagnostics;

  std::size_t count(Severity s) const;
  bool has_errors() const;
  // Findings = warnings or errors; notes alone leave a model clean.
  bool has_findings() const;
  void merge(Report other);
};

// Verifiers for each model family. `model_path` labels the diagnostics
// (use the file the model came from when there is one).
Report verify_tree(const tree::DecisionTree& t, const VerifyOptions& options,
                   const std::string& model_path = "tree");
Report verify_forest(const forest::RandomForest& f,
                     const VerifyOptions& options,
                     const std::string& model_path = "forest");
Report verify_adaboost(const forest::AdaBoost& b,
                       const VerifyOptions& options,
                       const std::string& model_path = "adaboost");
Report verify_mlp(const ann::MlpModel& m, const VerifyOptions& options,
                  const std::string& model_path = "mlp");

// Rendering: one line per diagnostic ("severity [code] path:location
// message"), or a JSON array of diagnostic objects.
void print_text(const Report& report, std::ostream& os);
void print_json(const Report& report, std::ostream& os);

}  // namespace hdd::analysis
