// Abstract interpretation over feature intervals (see verifier.h).
//
// Tree traversal keeps ONE mutable box (vector of per-feature intervals)
// and walks the flat node array iteratively with explicit restore markers
// instead of copying the box per node — linting a forest of thousands of
// nodes is O(nodes) interval updates, which is what the lint throughput
// benchmark (bench/micro_lint.cpp) measures.
#include "analysis/verifier.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "ann/mlp.h"
#include "common/error.h"
#include "forest/adaboost.h"
#include "forest/random_forest.h"
#include "smart/attributes.h"
#include "tree/tree.h"

namespace hdd::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string fmt_num(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string fmt_interval(const Interval& iv) {
  std::string s = std::isinf(iv.lo) ? "(" : "[";
  s += fmt_num(iv.lo);
  s += ", ";
  s += fmt_num(iv.hi);
  s += (iv.hi_open || std::isinf(iv.hi)) ? ')' : ']';
  return s;
}

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// Resolves the starting box for a model of `num_features` inputs.
std::vector<Interval> resolve_domains(const FeatureDomains& domains,
                                      int num_features) {
  if (domains.bounds.empty()) {
    return FeatureDomains::unbounded(num_features).bounds;
  }
  HDD_REQUIRE(static_cast<int>(domains.bounds.size()) == num_features,
              "verify: domain count does not match the model's features");
  for (const Interval& iv : domains.bounds) {
    HDD_REQUIRE(!iv.empty(), "verify: empty feature domain");
  }
  return domains.bounds;
}

struct TreeScan {
  // Range of reachable, finite leaf values (lo > hi when none).
  double lo = kInf;
  double hi = -kInf;
  std::size_t reachable_leaves = 0;
};

// Walks the tree with interval propagation; appends diagnostics to
// `report` and returns the reachable leaf-value range. `node_prefix`
// labels locations inside ensembles ("tree[3] ").
TreeScan scan_tree(const tree::DecisionTree& t, const VerifyOptions& options,
                   const std::vector<Interval>& domains,
                   const std::string& model_path,
                   const std::string& node_prefix, const char* value_label,
                   Report& report) {
  const auto& nodes = t.nodes();
  TreeScan scan;
  std::vector<Interval> box = domains;
  std::vector<char> visited(nodes.size(), 0);

  auto diag = [&](Severity sev, std::int32_t node, const char* code,
                  std::string message) {
    report.diagnostics.push_back(
        {sev, model_path, node_prefix + "node " + std::to_string(node), code,
         std::move(message)});
  };

  // Everything under a dead branch is unreachable; flag its leaves and
  // mark the subtree visited so it is not re-reported as orphaned.
  auto flag_unreachable = [&](std::int32_t child, std::int32_t split_node) {
    std::vector<std::int32_t> sub{child};
    while (!sub.empty()) {
      const std::int32_t j = sub.back();
      sub.pop_back();
      visited[static_cast<std::size_t>(j)] = 1;
      const tree::Node& nj = nodes[static_cast<std::size_t>(j)];
      if (nj.is_leaf()) {
        diag(Severity::kError, j, "unreachable-leaf",
             "no input can reach this leaf: the split at node " +
                 std::to_string(split_node) +
                 " always sends samples the other way");
      } else {
        sub.push_back(nj.left);
        sub.push_back(nj.right);
      }
    }
  };

  // Work item: node >= 0 visits a node, node < 0 restores/assigns
  // box[assign_feature] = assign (the undo log of the DFS).
  struct Item {
    std::int32_t node;
    std::int32_t assign_feature;
    Interval assign;
  };
  std::vector<Item> stack;
  stack.push_back({0, -1, {}});
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    if (item.node < 0) {
      box[static_cast<std::size_t>(item.assign_feature)] = item.assign;
      continue;
    }
    const auto ni = static_cast<std::size_t>(item.node);
    visited[ni] = 1;
    const tree::Node& n = nodes[ni];
    if (!(n.weight >= 0.0) || n.count < 0) {
      diag(Severity::kWarning, item.node, "negative-weight",
           "node carries weight " + fmt_num(n.weight) + " / count " +
               std::to_string(n.count) +
               " — sample statistics must be non-negative");
    }
    if (n.is_leaf()) {
      ++scan.reachable_leaves;
      if (!std::isfinite(n.value)) {
        diag(Severity::kError, item.node, "leaf-value-non-finite",
             std::string("leaf ") + value_label + " is " + fmt_num(n.value));
        continue;
      }
      if (n.value < options.value_lo || n.value > options.value_hi) {
        diag(Severity::kError, item.node, "leaf-value-out-of-range",
             std::string("leaf ") + value_label + " " + fmt_num(n.value) +
                 " lies outside [" + fmt_num(options.value_lo) + ", " +
                 fmt_num(options.value_hi) + "]");
      }
      scan.lo = std::min(scan.lo, n.value);
      scan.hi = std::max(scan.hi, n.value);
      continue;
    }

    const auto f = static_cast<std::size_t>(n.feature);
    const double thr = n.threshold;
    const Interval iv = box[f];
    Interval left = iv;  // x < thr
    if (thr <= left.hi) {
      left.hi = thr;
      left.hi_open = true;
    }
    Interval right = iv;  // x >= thr
    right.lo = std::max(right.lo, thr);
    const bool left_ok = !left.empty();
    const bool right_ok = !right.empty();
    if (!left_ok || !right_ok) {
      // The parent box is feasible, so exactly one side is dead.
      diag(Severity::kError, item.node, "dead-split",
           "split f" + std::to_string(n.feature) + " < " + fmt_num(thr) +
               " always goes " + (left_ok ? "left" : "right") +
               ": the feasible range of f" + std::to_string(n.feature) +
               " here is " + fmt_interval(iv));
      flag_unreachable(left_ok ? n.right : n.left, item.node);
    }
    // Visit order: left under its constraint, then right, then restore
    // the parent's interval (LIFO, so pushed in reverse).
    stack.push_back({-1, n.feature, iv});
    if (right_ok) {
      stack.push_back({n.right, -1, {}});
      stack.push_back({-1, n.feature, right});
    }
    if (left_ok) {
      stack.push_back({n.left, -1, {}});
      stack.push_back({-1, n.feature, left});
    }
  }

  std::size_t orphans = 0;
  std::int32_t first_orphan = -1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!visited[i]) {
      ++orphans;
      if (first_orphan < 0) first_orphan = static_cast<std::int32_t>(i);
    }
  }
  if (orphans > 0) {
    diag(Severity::kWarning, first_orphan, "orphan-node",
         std::to_string(orphans) +
             " node(s) are not referenced by any reachable parent (dead "
             "weight in the serialized model)");
  }
  return scan;
}

const char* value_label_for(const tree::DecisionTree& t) {
  return t.task() == tree::Task::kRegression ? "health degree" : "margin";
}

// Reports a model whose output provably never changes sign: it can never
// raise (or never clear) an alarm, which defeats drive-level voting.
void check_constant_sign(double lo, double hi, const std::string& what,
                         const std::string& model_path, Report& report) {
  if (lo > hi) return;  // no finite outputs; errors already reported
  if (lo >= 0.0) {
    report.diagnostics.push_back(
        {Severity::kWarning, model_path, what, "constant-sign-model",
         "output is always >= 0 (range [" + fmt_num(lo) + ", " + fmt_num(hi) +
             "]): the model can never predict a failure"});
  } else if (hi < 0.0) {
    report.diagnostics.push_back(
        {Severity::kWarning, model_path, what, "constant-sign-model",
         "output is always < 0 (range [" + fmt_num(lo) + ", " + fmt_num(hi) +
             "]): the model can never predict a healthy drive"});
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

Interval Interval::all() { return {-kInf, kInf, false}; }

Interval Interval::closed(double lo, double hi) { return {lo, hi, false}; }

FeatureDomains FeatureDomains::unbounded(int num_features) {
  HDD_REQUIRE(num_features >= 1, "unbounded: num_features must be >= 1");
  FeatureDomains d;
  d.bounds.assign(static_cast<std::size_t>(num_features), Interval::all());
  return d;
}

FeatureDomains FeatureDomains::for_feature_set(const smart::FeatureSet& fs) {
  HDD_REQUIRE(!fs.specs.empty(), "for_feature_set: empty feature set");
  FeatureDomains d;
  d.bounds.reserve(fs.specs.size());
  for (const smart::FeatureSpec& spec : fs.specs) {
    const auto range = smart::attribute_range(spec.attr);
    if (!spec.is_change_rate()) {
      d.bounds.push_back(Interval::closed(range.lo, range.hi));
    } else if (smart::attribute_info(spec.attr).raw) {
      // Raw counters are unbounded above (and pending-sector counts can
      // shrink), so their rates admit no a-priori bound.
      d.bounds.push_back(Interval::all());
    } else {
      // A normalized value cannot move further than its whole scale over
      // the change interval, and the extractor divides by an elapsed time
      // of at least that interval.
      const double bound =
          (range.hi - range.lo) / spec.change_interval_hours;
      d.bounds.push_back(Interval::closed(-bound, bound));
    }
  }
  return d;
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool Report::has_errors() const { return count(Severity::kError) > 0; }

bool Report::has_findings() const {
  return count(Severity::kError) + count(Severity::kWarning) > 0;
}

void Report::merge(Report other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

Report verify_tree(const tree::DecisionTree& t, const VerifyOptions& options,
                   const std::string& model_path) {
  HDD_REQUIRE(t.trained(), "verify_tree: untrained tree");
  Report report;
  const auto domains = resolve_domains(options.domains, t.num_features());
  const TreeScan scan = scan_tree(t, options, domains, model_path, "",
                                  value_label_for(t), report);
  check_constant_sign(scan.lo, scan.hi, "tree", model_path, report);
  return report;
}

Report verify_forest(const forest::RandomForest& f,
                     const VerifyOptions& options,
                     const std::string& model_path) {
  HDD_REQUIRE(f.trained(), "verify_forest: untrained forest");
  Report report;
  const auto domains = resolve_domains(options.domains, f.num_features());

  // Per-member reachable output ranges, scanned in the member's subspace.
  std::vector<double> lo(f.tree_count()), hi(f.tree_count());
  bool ranges_ok = true;
  for (std::size_t i = 0; i < f.tree_count(); ++i) {
    const auto sub = f.member_features(i);
    std::vector<Interval> sub_domains;
    sub_domains.reserve(sub.size());
    for (const int orig : sub) {
      sub_domains.push_back(domains[static_cast<std::size_t>(orig)]);
    }
    const TreeScan scan = scan_tree(
        f.member_tree(i), options, sub_domains, model_path,
        "tree[" + std::to_string(i) + "] ",
        value_label_for(f.member_tree(i)), report);
    if (scan.lo > scan.hi) {
      ranges_ok = false;  // no finite leaves; already reported as errors
      continue;
    }
    lo[i] = scan.lo;
    hi[i] = scan.hi;
  }
  if (!ranges_ok) return report;

  // The forest votes by mean; sign analysis needs only the sums.
  double sum_lo = 0.0, sum_hi = 0.0;
  for (std::size_t i = 0; i < f.tree_count(); ++i) {
    sum_lo += lo[i];
    sum_hi += hi[i];
  }
  const auto n = static_cast<double>(f.tree_count());
  if (sum_lo >= 0.0 || sum_hi < 0.0) {
    // Every member is inert when the whole ensemble is one-sided; one
    // diagnostic explains it better than tree_count() repeats.
    check_constant_sign(sum_lo / n, sum_hi / n, "forest", model_path, report);
    return report;
  }
  // Rest-of-ensemble sums via prefix/suffix accumulation, NOT sum - lo[i]:
  // subtracting nearly-equal totals cancels catastrophically and can
  // "prove" a decisive member inert by a few ulps.
  const std::size_t count = f.tree_count();
  std::vector<double> pre_lo(count + 1, 0.0), pre_hi(count + 1, 0.0);
  std::vector<double> suf_lo(count + 1, 0.0), suf_hi(count + 1, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    pre_lo[i + 1] = pre_lo[i] + lo[i];
    pre_hi[i + 1] = pre_hi[i] + hi[i];
    suf_lo[count - 1 - i] = suf_lo[count - i] + lo[count - 1 - i];
    suf_hi[count - 1 - i] = suf_hi[count - i] + hi[count - 1 - i];
  }
  for (std::size_t i = 0; i < count; ++i) {
    // Member i matters iff the rest of the forest can land in
    // [-hi_i, -lo_i): only there does i's swing cross zero.
    const double rest_lo = pre_lo[i] + suf_lo[i + 1];
    const double rest_hi = pre_hi[i] + suf_hi[i + 1];
    const double reach = std::max(rest_lo, -hi[i]);
    const bool can_flip = reach <= rest_hi && reach < -lo[i];
    if (!can_flip) {
      report.diagnostics.push_back(
          {Severity::kWarning, model_path, "tree[" + std::to_string(i) + "]",
           "inert-member",
           "vote can never flip the forest: reachable outputs [" +
               fmt_num(lo[i]) + ", " + fmt_num(hi[i]) +
               "] against the rest of the ensemble in [" + fmt_num(rest_lo) +
               ", " + fmt_num(rest_hi) + "]"});
    }
  }
  return report;
}

Report verify_adaboost(const forest::AdaBoost& b, const VerifyOptions& options,
                       const std::string& model_path) {
  HDD_REQUIRE(b.trained(), "verify_adaboost: untrained ensemble");
  Report report;
  const auto& members = b.members();
  const auto domains = resolve_domains(
      options.domains, members.front().tree.num_features());

  double alpha_sum = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto loc = "member[" + std::to_string(i) + "]";
    const double alpha = members[i].alpha;
    if (!std::isfinite(alpha) || alpha <= 0.0) {
      report.diagnostics.push_back(
          {Severity::kWarning, model_path, loc, "nonpositive-alpha",
           "vote weight alpha = " + fmt_num(alpha) +
               " — the member contributes nothing (or inverts its vote)"});
    } else {
      alpha_sum += alpha;
    }
    const TreeScan scan =
        scan_tree(members[i].tree, options, domains, model_path, loc + " ",
                  value_label_for(members[i].tree), report);
    if (scan.lo > scan.hi) continue;
    // AdaBoost votes with predict_label (sign of the margin); a weak
    // learner whose reachable margins are one-sided always casts the same
    // vote.
    if (scan.lo >= 0.0 || scan.hi < 0.0) {
      report.diagnostics.push_back(
          {Severity::kWarning, model_path, loc, "inert-member",
           std::string("weak learner always votes ") +
               (scan.lo >= 0.0 ? "good" : "failed") +
               " (reachable margins [" + fmt_num(scan.lo) + ", " +
               fmt_num(scan.hi) + "])"});
    }
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    const double alpha = members[i].alpha;
    if (std::isfinite(alpha) && alpha > 0.0 && alpha > alpha_sum - alpha) {
      report.diagnostics.push_back(
          {Severity::kWarning, model_path, "member[" + std::to_string(i) + "]",
           "dominant-member",
           "alpha " + fmt_num(alpha) +
               " outweighs all other members combined (" +
               fmt_num(alpha_sum - alpha) +
               "): no combination of their votes can flip the ensemble"});
    }
  }
  return report;
}

Report verify_mlp(const ann::MlpModel& m, const VerifyOptions& options,
                  const std::string& model_path) {
  HDD_REQUIRE(m.trained(), "verify_mlp: untrained MLP");
  Report report;
  const auto ni = static_cast<std::size_t>(m.num_features());
  const auto nh = static_cast<std::size_t>(m.hidden_units());
  const auto domains = resolve_domains(options.domains, m.num_features());

  const auto w1 = m.layer1_weights();
  const auto b1 = m.layer1_biases();
  const auto w2 = m.layer2_weights();
  const auto offset = m.input_offset();
  const auto scale = m.input_scale();

  bool finite = true;
  auto check_finite = [&](double v, std::string location) {
    if (std::isfinite(v)) return;
    finite = false;
    report.diagnostics.push_back({Severity::kError, model_path,
                                  std::move(location), "non-finite-weight",
                                  "parameter is " + fmt_num(v)});
  };
  for (std::size_t h = 0; h < nh; ++h) {
    for (std::size_t f = 0; f < ni; ++f) {
      check_finite(w1[h * ni + f], "w1[h=" + std::to_string(h) + "][f=" +
                                       std::to_string(f) + "]");
    }
    check_finite(b1[h], "b1[h=" + std::to_string(h) + "]");
    check_finite(w2[h], "w2[h=" + std::to_string(h) + "]");
  }
  check_finite(m.layer2_bias(), "b2");
  for (std::size_t f = 0; f < ni; ++f) {
    check_finite(offset[f], "offset[f=" + std::to_string(f) + "]");
    check_finite(scale[f], "scale[f=" + std::to_string(f) + "]");
    if (std::isfinite(scale[f]) && scale[f] < 0.0) {
      report.diagnostics.push_back(
          {Severity::kError, model_path, "scale[f=" + std::to_string(f) + "]",
           "invalid-scale",
           "negative input scale " + fmt_num(scale[f]) +
               " inverts the feature's ordering"});
    } else if (scale[f] == 0.0) {
      report.diagnostics.push_back(
          {Severity::kNote, model_path, "scale[f=" + std::to_string(f) + "]",
           "constant-input",
           "input feature is constant under the scaler and contributes "
           "nothing"});
    }
  }
  if (!finite) return report;  // interval analysis is meaningless on NaNs

  // Standardized input box. The min-max scaler maps the training range to
  // [0, 1]; where the declared domain is unbounded we fall back to that
  // design range, so saturation claims read "across the scaler's design
  // range" rather than being unprovable.
  std::vector<double> slo(ni), shi(ni);
  for (std::size_t f = 0; f < ni; ++f) {
    const Interval& d = domains[f];
    if (scale[f] == 0.0) {
      slo[f] = shi[f] = 0.0;
    } else if (std::isinf(d.lo) || std::isinf(d.hi)) {
      slo[f] = 0.0;
      shi[f] = 1.0;
    } else {
      slo[f] = (d.lo - offset[f]) * scale[f];
      shi[f] = (d.hi - offset[f]) * scale[f];
      if (slo[f] > shi[f]) std::swap(slo[f], shi[f]);
    }
  }

  double zo_lo = m.layer2_bias(), zo_hi = m.layer2_bias();
  for (std::size_t h = 0; h < nh; ++h) {
    double zlo = b1[h], zhi = b1[h];
    for (std::size_t f = 0; f < ni; ++f) {
      const double a = w1[h * ni + f] * slo[f];
      const double b = w1[h * ni + f] * shi[f];
      zlo += std::min(a, b);
      zhi += std::max(a, b);
    }
    if (zlo > options.saturation_z || zhi < -options.saturation_z) {
      report.diagnostics.push_back(
          {Severity::kWarning, model_path, "hidden[h=" + std::to_string(h) +
                                               "]",
           "saturated-unit",
           "pre-activation stays in [" + fmt_num(zlo) + ", " + fmt_num(zhi) +
               "] over the whole input domain: the sigmoid is constant and "
               "the unit is dead weight"});
    }
    const double act_lo = sigmoid(zlo), act_hi = sigmoid(zhi);
    const double a = w2[h] * act_lo;
    const double b = w2[h] * act_hi;
    zo_lo += std::min(a, b);
    zo_hi += std::max(a, b);
  }
  // Output margin = 2*sigmoid(zo) - 1: its sign is zo's sign.
  check_constant_sign(2.0 * sigmoid(zo_lo) - 1.0, 2.0 * sigmoid(zo_hi) - 1.0,
                      "output", model_path, report);
  return report;
}

void print_text(const Report& report, std::ostream& os) {
  for (const Diagnostic& d : report.diagnostics) {
    os << severity_name(d.severity) << " [" << d.code << "] " << d.model_path
       << ": " << d.location << ": " << d.message << '\n';
  }
}

void print_json(const Report& report, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "  {\"severity\": \"" << severity_name(d.severity)
       << "\", \"code\": \"" << json_escape(d.code)
       << "\", \"model_path\": \"" << json_escape(d.model_path)
       << "\", \"location\": \"" << json_escape(d.location)
       << "\", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  os << (report.diagnostics.empty() ? "]\n" : "\n]\n");
}

}  // namespace hdd::analysis
