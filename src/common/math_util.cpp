#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.h"

namespace hdd {

std::optional<double> parse_double(const std::string& token) {
  if (token.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') return std::nullopt;
  return v;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  HDD_REQUIRE(!xs.empty(), "percentile of empty span");
  HDD_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  HDD_REQUIRE(xs.size() == ys.size(), "correlation size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_two_sided_p(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

double xlog2x(double x) {
  if (x <= 0.0) return 0.0;
  return x * std::log2(x);
}

double binary_entropy(double p) { return -xlog2x(p) - xlog2x(1.0 - p); }

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  HDD_REQUIRE(n >= 2, "linspace needs n >= 2");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + (hi - lo) * static_cast<double>(i) /
                      static_cast<double>(n - 1);
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  HDD_REQUIRE(lo > 0.0 && hi > 0.0, "logspace needs positive bounds");
  auto exps = linspace(std::log10(lo), std::log10(hi), n);
  for (double& e : exps) e = std::pow(10.0, e);
  return exps;
}

}  // namespace hdd
