// Tiny leveled logger. Benches default to kInfo; tests to kWarn.
//
// Every library diagnostic routes through the level filter — nothing in
// the library writes to stderr unconditionally. The threshold comes from,
// in increasing precedence: the kInfo default, the HDD_LOG_LEVEL
// environment variable (read once, at first use), and set_log_level()
// (the CLI's global --log-level flag).
//
// Output format is selectable the same way (HDD_LOG_FORMAT /
// --log-format): kText is the classic "[level] message" line; kJson emits
// one JSON object per line with severity, epoch-millisecond timestamp and
// — when the calling thread is inside a span (obs/trace.h) — the current
// trace id, so daemon logs correlate with /debug/trace captures.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hdd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// "debug" / "info" / "warn" / "error" -> level; nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

// Sets/gets the global threshold (messages below it are dropped).
void set_log_level(LogLevel level);
LogLevel log_level();

enum class LogFormat { kText = 0, kJson = 1 };

// "text" / "json" -> format; nullopt for anything else.
std::optional<LogFormat> parse_log_format(std::string_view name);

// Sets/gets the global output format (default kText, seeded once from
// HDD_LOG_FORMAT, overridden by the CLI's global --log-format flag).
void set_log_format(LogFormat format);
LogFormat log_format();

// Emits one line ("[level] message") to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace hdd
