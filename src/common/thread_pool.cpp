#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "obs/metrics.h"

namespace hdd {

ThreadPool::ThreadPool(std::size_t n_threads, obs::Registry* metrics) {
  // Instruments must exist before the first worker can touch them.
  obs::Registry& reg = metrics != nullptr ? *metrics : obs::Registry::global();
  tasks_total_ = &reg.counter("hdd_pool_tasks_total",
                              "Tasks executed by pool workers.");
  queue_depth_ = &reg.gauge("hdd_pool_queue_depth",
                            "Tasks submitted and not yet dequeued.");
  task_latency_ = &reg.histogram("hdd_pool_task_latency_ns",
                                 "Per-task execution wall time (ns).");
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    MutexLock lock(&mutex_);
    HDD_ASSERT(!stopping_);
    tasks_.push(std::move(packaged));
  }
  queue_depth_->add(1.0);
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    queue_depth_->sub(1.0);
    {
      obs::ScopedTimer timer(task_latency_);
      task();  // packaged_task captures exceptions into the future
    }
    tasks_total_->inc();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // A single index, or a single-worker pool, gains nothing from the future
  // machinery — run inline on the caller.
  if (n == 1 || size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Chunked dynamic scheduling via a shared atomic cursor. Once any task
  // throws, the remaining indices are abandoned.
  std::atomic<std::size_t> next{begin};
  std::atomic<bool> failed{false};
  const std::size_t n_workers = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    futures.push_back(submit([&next, &failed, end, &fn] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1);
        if (i >= end) return;
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    }));
  }
  // Every future must be drained before the locals above leave scope, even
  // when one of them holds an exception — so collect first, throw after.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hdd
