// Runtime lock-rank checker — the dynamic half of the concurrency contract.
//
// Clang's -Wthread-safety (common/thread_annotations.h) proves which lock
// guards which field, but only under clang, and it cannot see cross-lock
// *ordering*. This checker covers that blind spot at runtime for every
// build (GCC, sanitizer configs): each capability declares a Rank, a
// thread must only acquire locks in strictly increasing rank order, and a
// violation — out-of-order, same-rank nesting, or re-entrant acquisition —
// prints both acquisition stacks and aborts. Deadlocks that TSan needs a
// lucky interleaving to catch become deterministic failures on the first
// mis-ordered acquisition, even when no second thread is running.
//
// The rank table IS the documented lock hierarchy of the whole system
// (DESIGN.md §11): a thread walks it left to right and never backwards.
// Gaps between values leave room for future locks.
//
// Cost: disabled (the default in plain builds), each lock/unlock pays one
// relaxed atomic load and a branch. Enabled (sanitizer/debug configs — the
// CMake option HDD_LOCK_ORDER, any HDD_SANITIZE build, or the environment
// variable HDD_LOCK_ORDER=1), each acquisition additionally records a
// small backtrace so the abort can show where the conflicting lock was
// taken.
#pragma once

#include <atomic>

namespace hdd::lock_order {

// The global acquisition order, ascending: a thread holding rank R may
// only acquire ranks strictly greater than R. Equal ranks never nest.
enum class Rank : int {
  kServeStop = 10,        // serve::Server::stop_mu_ (outermost: shutdown)
  kRetrainStop = 12,      // serve::RetrainLoop::stop_mu_
  kRetrainResult = 14,    // serve::RetrainLoop::mu_ (last_result snapshot)
  kServeConns = 20,       // serve::Server::conn_mu_ (fd/thread registry)
  kShardQueue = 30,       // serve::Server::ShardWorker::mu (task queues)
  kPoolQueue = 40,        // hdd::ThreadPool::mutex_ (task queue)
  kServeCompletion = 50,  // serve fan-out Completion latches
  kObsRegistry = 60,      // obs::Registry::mutex_ (instrument registration)
  kFaultLog = 70,         // io::FaultEnv::State::log_mutex (fault log)
  kLog = 80,              // common/log.h sink mutex (leaf: logging happens
                          // under any of the above)
  kRcuSpin = 90,          // core::RcuSlot spinlock (terminal leaf: nothing
                          // may be acquired while spinning)
};

// Rank name for diagnostics ("serve-stop", "rcu-spin", ...).
const char* rank_name(Rank r);

namespace detail {
extern std::atomic<bool> g_enabled;
// Validate + record / unrecord one acquisition on this thread's stack.
// acquire_slow aborts (after printing both stacks) on a rank violation.
void acquire_slow(Rank r, const void* lock, const char* name);
void release_slow(Rank r, const void* lock, const char* name);
}  // namespace detail

// Whether the checker is active. Defaults to on when compiled with
// HDD_LOCK_ORDER_CHECKS (sanitizer configs / -DHDD_LOCK_ORDER=ON),
// overridable either way by the environment variable HDD_LOCK_ORDER=0|1.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Runtime switch (tests flip it on in plain builds, and off to restore).
// Only toggle while the process is single-threaded or quiescent: per-thread
// held-lock stacks are not rebuilt retroactively.
void set_enabled(bool on);

// Capability hooks: call acquire just before taking the lock (so a real
// inversion aborts instead of deadlocking) and release just before
// dropping it. Both are no-ops while the checker is disabled.
inline void note_acquire(Rank r, const void* lock, const char* name) {
  if (enabled()) detail::acquire_slow(r, lock, name);
}
inline void note_release(Rank r, const void* lock, const char* name) {
  if (enabled()) detail::release_slow(r, lock, name);
}

// Locks this thread currently holds, per the checker's bookkeeping
// (0 when disabled) — lets tests assert the stack drains cleanly.
int held_count();

}  // namespace hdd::lock_order
