// Error-handling helpers shared across the hddpred library.
//
// The library favours exceptions for contract violations that a caller can
// plausibly recover from (bad configuration, malformed input files) and
// HDD_ASSERT for internal invariants that indicate a programming error.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hdd {

// Thrown when a user-supplied configuration value is out of range or
// internally inconsistent (e.g. minbucket > minsplit, empty feature set).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when input data cannot be parsed or violates the documented schema.
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

// A DataError carrying the structured shape of a declared-size violation:
// which field of the input blew past which limit. Parsers throw this
// *before* allocating storage for the declared size, so a hostile header
// ("nodes 4000000000") fails fast instead of exhausting memory — the
// contract the model/segment fuzzers pin.
class ParseError : public DataError {
 public:
  ParseError(const std::string& field, std::uint64_t requested,
             std::uint64_t limit)
      : DataError(field + " " + std::to_string(requested) +
                  " exceeds the load limit " + std::to_string(limit)),
        field_(field),
        requested_(requested),
        limit_(limit) {}

  const std::string& field() const { return field_; }
  std::uint64_t requested() const { return requested_; }
  std::uint64_t limit() const { return limit_; }

 private:
  std::string field_;
  std::uint64_t requested_;
  std::uint64_t limit_;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "HDD_ASSERT failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace hdd

// Internal invariant check. Always on: the library is not perf-bound on
// these checks and silent corruption is worse than an exception.
#define HDD_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::hdd::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define HDD_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::hdd::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

// Validates a user-facing precondition; throws ConfigError on failure.
#define HDD_REQUIRE(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) throw ::hdd::ConfigError(msg);                       \
  } while (0)
