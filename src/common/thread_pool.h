// Fixed-size thread pool with a parallel_for helper.
//
// Training is embarrassingly parallel across model configurations and ROC
// sweep points; the bench harnesses use parallel_for to keep wall-clock
// times low without per-call thread churn.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hdd::obs {
class Counter;
class Gauge;
class Histogram;
class Registry;
}  // namespace hdd::obs

namespace hdd {

class ThreadPool {
 public:
  // n_threads == 0 selects hardware_concurrency (at least 1). The pool
  // reports hdd_pool_* metrics (tasks executed, queue depth, task
  // latency) into `metrics`; nullptr selects obs::Registry::global(). A
  // non-global registry must outlive the pool.
  explicit ThreadPool(std::size_t n_threads = 0,
                      obs::Registry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future reports completion/exception.
  std::future<void> submit(std::function<void()> task);

  // Runs fn(i) for i in [begin, end) across the pool and waits for all.
  // Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Returns a process-wide shared pool.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_{lock_order::Rank::kPoolQueue, "pool-queue"};
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ HDD_GUARDED_BY(mutex_);
  bool stopping_ HDD_GUARDED_BY(mutex_) = false;

  obs::Counter* tasks_total_;     // tasks executed by workers
  obs::Gauge* queue_depth_;       // submitted, not yet dequeued
  obs::Histogram* task_latency_;  // per-task execution wall time (ns)
};

}  // namespace hdd
