// hdd::Mutex / MutexLock / CondVar — annotated, rank-checked lock wrappers.
//
// Every mutex in the system goes through these instead of raw std::mutex,
// which buys two enforced contracts for the price of one wrapper:
//  * Clang thread-safety analysis (common/thread_annotations.h): the
//    capability annotations make "which field needs which lock" a compile
//    error under tools/static.sh.
//  * The runtime lock-rank checker (common/lock_order.h): each Mutex names
//    its Rank at construction; acquiring against the declared global order
//    aborts with both stacks, in any compiler's build.
//
// CondVar wraps std::condition_variable_any so waits go through
// Mutex::lock()/unlock() and the rank bookkeeping stays exact across the
// sleep. Predicates are deliberately NOT taken as lambdas: clang's
// analysis treats a lambda body as a separate unannotated function, so the
// idiomatic form here is the explicit while-loop in the caller, where the
// guarded reads are visibly under the capability.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace hdd {

class HDD_CAPABILITY("mutex") Mutex {
 public:
  // `name` labels rank-violation diagnostics; it must outlive the mutex
  // (string literals in practice).
  explicit Mutex(lock_order::Rank rank, const char* name)
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HDD_ACQUIRE() {
    // Rank check happens before blocking: a true inversion aborts with
    // stacks instead of deadlocking inside std::mutex.
    lock_order::note_acquire(rank_, this, name_);
    mu_.lock();
  }

  void unlock() HDD_RELEASE() {
    lock_order::note_release(rank_, this, name_);
    mu_.unlock();
  }

  bool try_lock() HDD_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock still participates in the hierarchy: ordering
    // discipline is about what a thread may hold, not how it blocked.
    lock_order::note_acquire(rank_, this, name_);
    return true;
  }

  lock_order::Rank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  lock_order::Rank rank_;
  const char* name_;
};

// RAII scoped lock (the only way the codebase takes a Mutex).
class HDD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HDD_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() HDD_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable over hdd::Mutex. wait() releases and reacquires the
// mutex through Mutex::unlock()/lock(), so the lock-rank bookkeeping (and
// clang's view of the held capability) survives the sleep.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) HDD_REQUIRES(mu) { cv_.wait(mu); }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& tp)
      HDD_REQUIRES(mu) {
    return cv_.wait_until(mu, tp);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& d)
      HDD_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hdd
