// Deterministic random-number utilities.
//
// Two generators are provided:
//
//  * Rng        — a sequential SplitMix64 stream, used wherever ordinary
//                 seeded randomness is enough (shuffles, bootstrap draws).
//  * CounterRng — a *counter-based* generator: the value at key
//                 (seed, a, b, c) is a pure function of its arguments.
//                 The SMART trace simulator uses it so any sample
//                 (drive, hour, attribute) can be regenerated in O(1)
//                 without storing traces; this is what makes the 8-week
//                 fleet experiments feasible in memory (DESIGN.md §5.1).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace hdd {

// Mixes 64 bits thoroughly (finalizer from SplitMix64 / MurmurHash3).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Combines two 64-bit values into one well-mixed key.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Sequential PRNG (SplitMix64). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal();

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  // Log-normal with the given mean/stddev of the *underlying* normal.
  double lognormal(double mu, double sigma);

  // Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  // Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  // Fisher–Yates shuffle of indices [0, n); returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_;
};

// Counter-based generator: value = f(seed, key...). Stateless by design.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t bits(std::uint64_t a, std::uint64_t b = 0,
                     std::uint64_t c = 0) const {
    return mix64(hash_combine(hash_combine(hash_combine(seed_, a), b), c));
  }

  // Uniform double in [0, 1) at the given key.
  double uniform(std::uint64_t a, std::uint64_t b = 0,
                 std::uint64_t c = 0) const {
    return static_cast<double>(bits(a, b, c) >> 11) * 0x1.0p-53;
  }

  // Standard normal at the given key (Box–Muller over two derived keys).
  double normal(std::uint64_t a, std::uint64_t b = 0,
                std::uint64_t c = 0) const;

  bool chance(double p, std::uint64_t a, std::uint64_t b = 0,
              std::uint64_t c = 0) const {
    return uniform(a, b, c) < p;
  }

  std::uint64_t seed() const { return seed_; }

  // Derives a child CounterRng (e.g. one per drive).
  CounterRng child(std::uint64_t key) const {
    return CounterRng(hash_combine(seed_, key));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace hdd
