// cpu_relax() — the polite way to spin.
//
// Inside a spin-wait loop the core should tell the CPU it is waiting:
// x86's PAUSE de-pipelines the loop (cutting the memory-order mis-
// speculation penalty when the awaited store lands and easing hyper-
// thread contention), ARM's YIELD is the moral equivalent. On anything
// else this compiles to nothing — the loop is still correct, just rude.
#pragma once

namespace hdd {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No architectural hint available; plain busy-wait.
#endif
}

}  // namespace hdd
