// Minimal CSV reader/writer.
//
// Supports the subset of RFC 4180 the library needs: comma separation,
// double-quote quoting with embedded commas/quotes/newlines, and a header
// row. Used by data/csv_io.{h,cpp} to import/export drive datasets so users
// can plug real SMART dumps (e.g. Backblaze exports) into the pipeline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hdd {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  // Writes one row, quoting cells as needed.
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& is) : is_(is) {}

  // Reads the next record (which may span multiple physical lines if
  // quoted). Returns false at end of input.
  [[nodiscard]] bool read_row(std::vector<std::string>& cells);

 private:
  std::istream& is_;
};

// Escapes a single CSV cell per RFC 4180.
std::string csv_escape(const std::string& cell);

// Parses one CSV text blob into rows (convenience for tests).
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace hdd
