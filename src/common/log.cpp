#include "common/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "common/mutex.h"

namespace hdd {

namespace {

// HDD_LOG_LEVEL seeds the threshold once; set_log_level overrides it. An
// unparseable value falls back to the default rather than failing — a bad
// environment must not break the program it observes.
int initial_level() {
  if (const char* env = std::getenv("HDD_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) {
      return static_cast<int>(*level);
    }
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{initial_level()};
  return level;
}

// Serializes sink writes only (no guarded fields). Ranked as a leaf:
// subsystems log while holding their own locks, never the reverse.
Mutex g_mutex{lock_order::Rank::kLog, "log"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level));
}

LogLevel log_level() { return static_cast<LogLevel>(level_store().load()); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < level_store().load()) return;
  MutexLock lock(&g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace hdd
