#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/mutex.h"
#include "obs/trace.h"

namespace hdd {

namespace {

// HDD_LOG_LEVEL seeds the threshold once; set_log_level overrides it. An
// unparseable value falls back to the default rather than failing — a bad
// environment must not break the program it observes.
int initial_level() {
  if (const char* env = std::getenv("HDD_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) {
      return static_cast<int>(*level);
    }
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{initial_level()};
  return level;
}

// HDD_LOG_FORMAT seeds the format once; set_log_format overrides it.
int initial_format() {
  if (const char* env = std::getenv("HDD_LOG_FORMAT")) {
    if (const auto format = parse_log_format(env)) {
      return static_cast<int>(*format);
    }
  }
  return static_cast<int>(LogFormat::kText);
}

std::atomic<int>& format_store() {
  static std::atomic<int> format{initial_format()};
  return format;
}

// Minimal JSON string escaping: quotes, backslashes and control bytes.
void append_json_escaped(std::string& out, const std::string& s) {
  static const char* kHex = "0123456789abcdef";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      out += "\\u00";
      out += kHex[u >> 4];
      out += kHex[u & 0xf];
    } else {
      out += c;
    }
  }
}

// Serializes sink writes only (no guarded fields). Ranked as a leaf:
// subsystems log while holding their own locks, never the reverse.
Mutex g_mutex{lock_order::Rank::kLog, "log"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level));
}

LogLevel log_level() { return static_cast<LogLevel>(level_store().load()); }

std::optional<LogFormat> parse_log_format(std::string_view name) {
  if (name == "text") return LogFormat::kText;
  if (name == "json") return LogFormat::kJson;
  return std::nullopt;
}

void set_log_format(LogFormat format) {
  format_store().store(static_cast<int>(format));
}

LogFormat log_format() { return static_cast<LogFormat>(format_store().load()); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < level_store().load()) return;
  if (log_format() == LogFormat::kJson) {
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::string line = "{\"ts_ms\":";
    line += std::to_string(ts_ms);
    line += ",\"level\":\"";
    line += level_name(level);
    line += "\",\"msg\":\"";
    append_json_escaped(line, message);
    line += '"';
    if (const std::uint64_t trace_id = obs::current_trace_id();
        trace_id != 0) {
      char id[32];
      std::snprintf(id, sizeof id, "0x%llx",
                    static_cast<unsigned long long>(trace_id));
      line += ",\"trace_id\":\"";
      line += id;
      line += '"';
    }
    line += '}';
    MutexLock lock(&g_mutex);
    std::cerr << line << '\n';
    return;
  }
  MutexLock lock(&g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace hdd
