#include "common/csv.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace hdd {

std::string csv_escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& cells) {
  cells.clear();
  std::string cell;
  bool in_quotes = false;
  bool saw_any = false;
  int ch;
  while ((ch = is_.get()) != std::char_traits<char>::eof()) {
    saw_any = true;
    const char c = static_cast<char>(ch);
    if (in_quotes) {
      if (c == '"') {
        if (is_.peek() == '"') {
          cell += '"';
          is_.get();
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      cells.push_back(std::move(cell));
      return true;
    } else if (c == '\r') {
      // Swallow; the following '\n' (if any) terminates the row.
    } else {
      cell += c;
    }
  }
  if (!saw_any) return false;
  cells.push_back(std::move(cell));
  return true;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::istringstream is(text);
  CsvReader reader(is);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  while (reader.read_row(row)) rows.push_back(row);
  return rows;
}

}  // namespace hdd
