// Portable Clang thread-safety (capability) annotations.
//
// Under clang with -Wthread-safety (tools/static.sh turns it on with
// -Werror), these macros make the codebase's lock discipline a compile-time
// contract: HDD_GUARDED_BY names the mutex that must be held to touch a
// field, HDD_REQUIRES the capability a function demands from its caller,
// HDD_ACQUIRE/HDD_RELEASE the functions that take and drop it. Everywhere
// else (GCC, MSVC) they expand to nothing, and the runtime lock-rank
// checker (common/lock_order.h) enforces the dynamic half of the same
// contract — the two detectors cover each other's blind spots.
//
// This header is the ONLY place HDD_NO_THREAD_SAFETY_ANALYSIS may be
// defined; tools/static.sh fails the build if the escape hatch appears
// anywhere else in the tree. Reference:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define HDD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HDD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type annotations --------------------------------------------------------

// Marks a class as a capability (a lock). The string is the capability
// kind shown in diagnostics ("mutex", "spinlock").
#define HDD_CAPABILITY(x) HDD_THREAD_ANNOTATION(capability(x))

// Marks an RAII class that acquires a capability in its constructor and
// releases it in its destructor (MutexLock).
#define HDD_SCOPED_CAPABILITY HDD_THREAD_ANNOTATION(scoped_lockable)

// Field annotations -------------------------------------------------------

// The declared field may only be read or written while holding `x`.
#define HDD_GUARDED_BY(x) HDD_THREAD_ANNOTATION(guarded_by(x))

// The pointed-to data (not the pointer itself) is guarded by `x`.
#define HDD_PT_GUARDED_BY(x) HDD_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotations ----------------------------------------------------

// The caller must hold the listed capabilities (exclusively / shared).
#define HDD_REQUIRES(...) \
  HDD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HDD_REQUIRES_SHARED(...) \
  HDD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the listed capabilities. With no
// argument (on a member of the capability class itself) they refer to
// `this`.
#define HDD_ACQUIRE(...) \
  HDD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HDD_ACQUIRE_SHARED(...) \
  HDD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define HDD_RELEASE(...) \
  HDD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HDD_RELEASE_SHARED(...) \
  HDD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// The function acquires the capability only when it returns the given
// value (try_lock).
#define HDD_TRY_ACQUIRE(...) \
  HDD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// The caller must NOT hold the listed capabilities (deadlock guard for
// functions that acquire them internally).
#define HDD_EXCLUDES(...) HDD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Asserts (without acquiring) that the capability is held — for helper
// functions called only with the lock already taken via an alias the
// analysis cannot follow.
#define HDD_ASSERT_CAPABILITY(x) HDD_THREAD_ANNOTATION(assert_capability(x))

// The function returns a reference to the named capability (accessor).
#define HDD_RETURN_CAPABILITY(x) HDD_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Must never appear
// outside this header (tools/static.sh enforces zero uses in the tree).
#define HDD_NO_THREAD_SAFETY_ANALYSIS \
  HDD_THREAD_ANNOTATION(no_thread_safety_analysis)
