#include "common/lock_order.h"

#include <execinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace hdd::lock_order {

namespace {

// Frames recorded per held lock so a violation can show where the
// conflicting lock was acquired. Small on purpose: capture runs on every
// enabled acquisition.
constexpr int kStackDepth = 16;
// Deepest legal nesting. The real hierarchy is ~4 deep; hitting this cap
// is itself a discipline violation and aborts.
constexpr int kMaxHeld = 16;

struct HeldLock {
  int rank = 0;
  const void* lock = nullptr;
  const char* name = nullptr;
  void* stack[kStackDepth];
  int depth = 0;
};

struct ThreadState {
  HeldLock held[kMaxHeld];
  int n = 0;
};

thread_local ThreadState t_state;

bool env_default() {
  const char* env = std::getenv("HDD_LOCK_ORDER");
  if (env != nullptr && env[0] != '\0') {
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
  }
#ifdef HDD_LOCK_ORDER_CHECKS
  return true;
#else
  return false;
#endif
}

void print_stack(const char* label, void* const* stack, int depth) {
  std::fprintf(stderr, "%s\n", label);
  // Async-signal-unsafe allocation is fine here: we are about to abort, and
  // the checker never runs inside a signal handler.
  backtrace_symbols_fd(const_cast<void* const*>(stack), depth, STDERR_FILENO);
}

[[noreturn]] void violation(const char* kind, const HeldLock* blocker,
                            int rank, const char* name) {
  std::fprintf(stderr,
               "lock-rank violation (%s): acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d)\n",
               kind, name, rank, blocker != nullptr ? blocker->name : "?",
               blocker != nullptr ? blocker->rank : -1);
  if (blocker != nullptr && blocker->depth > 0) {
    print_stack("  held lock was acquired at:", blocker->stack,
                blocker->depth);
  }
  void* here[kStackDepth * 2];
  const int depth = backtrace(here, kStackDepth * 2);
  print_stack("  violating acquisition at:", here, depth);
  std::fflush(stderr);
  // Leave a timeline behind: the rank violation usually implicates a
  // specific request/retrain interleaving that the stacks alone can't show.
  obs::dump_flight_recorder("lock-rank-abort");
  std::abort();
}

}  // namespace

const char* rank_name(Rank r) {
  switch (r) {
    case Rank::kServeStop: return "serve-stop";
    case Rank::kRetrainStop: return "retrain-stop";
    case Rank::kRetrainResult: return "retrain-result";
    case Rank::kServeConns: return "serve-conns";
    case Rank::kShardQueue: return "shard-queue";
    case Rank::kPoolQueue: return "pool-queue";
    case Rank::kServeCompletion: return "serve-completion";
    case Rank::kObsRegistry: return "obs-registry";
    case Rank::kFaultLog: return "fault-log";
    case Rank::kLog: return "log";
    case Rank::kRcuSpin: return "rcu-spin";
  }
  return "?";
}

namespace detail {

std::atomic<bool> g_enabled{env_default()};

void acquire_slow(Rank r, const void* lock, const char* name) {
  ThreadState& st = t_state;
  const int rank = static_cast<int>(r);
  const HeldLock* worst = nullptr;
  for (int i = 0; i < st.n; ++i) {
    if (st.held[i].lock == lock) {
      violation("re-entrant", &st.held[i], rank, name);
    }
    if (st.held[i].rank >= rank &&
        (worst == nullptr || st.held[i].rank > worst->rank)) {
      worst = &st.held[i];
    }
  }
  if (worst != nullptr) {
    violation(worst->rank == rank ? "same-rank nesting" : "out-of-order",
              worst, rank, name);
  }
  if (st.n >= kMaxHeld) {
    violation("nesting too deep", st.n > 0 ? &st.held[st.n - 1] : nullptr,
              rank, name);
  }
  HeldLock& h = st.held[st.n++];
  h.rank = rank;
  h.lock = lock;
  h.name = name;
  h.depth = backtrace(h.stack, kStackDepth);
}

void release_slow(Rank r, const void* lock, const char* name) {
  (void)r;
  ThreadState& st = t_state;
  // Releases are usually LIFO; search from the top for the odd
  // out-of-order unlock (std::unique_lock-style usage).
  for (int i = st.n - 1; i >= 0; --i) {
    if (st.held[i].lock != lock) continue;
    for (int j = i; j + 1 < st.n; ++j) st.held[j] = st.held[j + 1];
    --st.n;
    return;
  }
  // Releasing a lock the checker never saw acquired: the checker was
  // enabled mid-critical-section (tests toggling the flag). Tolerated —
  // aborting here would make set_enabled unusable.
  (void)name;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

int held_count() { return t_state.n; }

}  // namespace hdd::lock_order
