// Small numeric helpers shared across modules.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hdd {

// Parses one floating-point token. Unlike istream extraction this accepts
// "nan"/"inf"/"-inf" (strtod grammar), so serialized models with poisoned
// parameters still parse and can be rejected with a diagnostic instead of
// a generic read failure. Returns nullopt when the token is not a number
// or has trailing garbage.
std::optional<double> parse_double(const std::string& token);

// Clamps v into [lo, hi].
constexpr double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

// Unbiased sample variance (n-1 denominator); returns 0 for n < 2.
double variance(std::span<const double> xs);

// Sample standard deviation.
double stddev(std::span<const double> xs);

// p-th percentile (linear interpolation), p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

// Pearson correlation; returns 0 when either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

// Standard normal CDF.
double normal_cdf(double z);

// Two-sided p-value for a standard normal statistic.
double normal_two_sided_p(double z);

// x * log2(x) with the 0 * log 0 = 0 convention.
double xlog2x(double x);

// Binary entropy of a Bernoulli(p); 0 at p in {0, 1}.
double binary_entropy(double p);

// Linearly spaced values from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

// Logarithmically spaced values (lo, hi > 0, n >= 2).
std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace hdd
