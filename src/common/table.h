// Aligned ASCII table printer used by the bench harnesses to emit the
// paper's tables and figure series in a readable, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hdd {

class Table {
 public:
  // Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  // Appends one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats each cell with fixed precision.
  // Strings pass through; doubles are formatted with `precision` decimals.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(double v, int precision = 2);
    RowBuilder& cell(long long v);
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  // Renders the table with a separator line under the header.
  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals (locale-independent).
std::string format_double(double v, int precision);

}  // namespace hdd
