#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace hdd {

std::string format_double(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HDD_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HDD_REQUIRE(cells.size() == headers_.size(),
              "Table row has wrong number of cells");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(format_double(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace hdd
