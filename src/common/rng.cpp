#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace hdd {

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  HDD_ASSERT(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  HDD_ASSERT(rate > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

double CounterRng::normal(std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) const {
  // Two independent uniforms derived from adjacent keys in the c-dimension.
  double u1 = uniform(a, b, c * 2 + 1);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform(a, b, c * 2 + 2);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace hdd
