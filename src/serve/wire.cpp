#include "serve/wire.h"

#include <bit>

#include "store/format.h"

namespace hdd::serve {

using store::put_u8;
using store::put_u16;
using store::put_u32;
using store::put_u64;
using store::Reader;

namespace {

// Smallest possible per-sample ingest entry (empty serial), used to bound
// attacker-controlled counts before any reserve().
constexpr std::size_t kMinIngestEntryBytes =
    2 + 8 + 4 * smart::kNumAttributes;

void put_serial(std::string& out, std::string_view serial) {
  put_u16(out, static_cast<std::uint16_t>(serial.size()));
  out.append(serial);
}

bool read_serial(Reader& r, std::string_view payload, std::string& out) {
  std::uint16_t len = 0;
  if (!r.u16(len) || !r.remaining(len)) return false;
  out.assign(payload.substr(r.pos, len));
  r.pos += len;
  return true;
}

bool read_sample(Reader& r, smart::Sample& s) {
  std::uint64_t hour = 0;
  if (!r.u64(hour)) return false;
  s.hour = static_cast<std::int64_t>(hour);
  for (float& v : s.attrs) {
    std::uint32_t bits = 0;
    if (!r.u32(bits)) return false;
    v = std::bit_cast<float>(bits);
  }
  return true;
}

// Consumes the optional trailing trace id: exactly 8 bytes past the body
// is the field, zero bytes is an untraced (old-client) request, anything
// else is the trailing-garbage protocol error it always was.
bool read_trace_id(Reader& r, std::string_view payload,
                   std::uint64_t& trace_id) {
  if (r.pos == payload.size()) return true;
  if (payload.size() - r.pos != 8) return false;
  return r.u64(trace_id);
}

}  // namespace

std::string encode_ingest_request(const IngestBatch& batch,
                                  std::uint64_t trace_id) {
  std::string out;
  std::size_t bytes = 1 + 4 + (trace_id != 0 ? 8 : 0);
  for (const std::string& s : batch.serials) {
    bytes += 2 + s.size() + 8 + 4 * smart::kNumAttributes;
  }
  out.reserve(bytes);
  put_u8(out, static_cast<std::uint8_t>(Op::kIngest));
  put_u32(out, static_cast<std::uint32_t>(batch.samples.size()));
  for (std::size_t i = 0; i < batch.samples.size(); ++i) {
    put_serial(out, batch.serials[i]);
    put_u64(out, static_cast<std::uint64_t>(batch.samples[i].hour));
    for (float v : batch.samples[i].attrs) {
      put_u32(out, std::bit_cast<std::uint32_t>(v));
    }
  }
  if (trace_id != 0) put_u64(out, trace_id);
  return out;
}

std::string encode_query_request(std::string_view serial,
                                 std::uint64_t trace_id) {
  std::string out;
  out.reserve(1 + 2 + serial.size() + (trace_id != 0 ? 8 : 0));
  put_u8(out, static_cast<std::uint8_t>(Op::kQuery));
  put_serial(out, serial);
  if (trace_id != 0) put_u64(out, trace_id);
  return out;
}

std::string encode_stats_request(std::uint64_t trace_id) {
  std::string out(1, static_cast<char>(Op::kStats));
  if (trace_id != 0) put_u64(out, trace_id);
  return out;
}

std::string encode_shutdown_request(std::uint64_t trace_id) {
  std::string out(1, static_cast<char>(Op::kShutdown));
  if (trace_id != 0) put_u64(out, trace_id);
  return out;
}

std::optional<Request> decode_request(std::string_view payload) {
  Reader r{payload};
  std::uint8_t op = 0;
  if (!r.u8(op)) return std::nullopt;
  Request req;
  switch (static_cast<Op>(op)) {
    case Op::kIngest: {
      req.op = Op::kIngest;
      std::uint32_t count = 0;
      if (!r.u32(count)) return std::nullopt;
      if (count > (payload.size() - r.pos) / kMinIngestEntryBytes + 1) {
        return std::nullopt;  // count can't fit the bytes we were given
      }
      req.ingest.serials.reserve(count);
      req.ingest.samples.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::string serial;
        smart::Sample s;
        if (!read_serial(r, payload, serial) || serial.empty() ||
            !read_sample(r, s)) {
          return std::nullopt;
        }
        req.ingest.serials.push_back(std::move(serial));
        req.ingest.samples.push_back(s);
      }
      if (!read_trace_id(r, payload, req.trace_id)) return std::nullopt;
      return req;
    }
    case Op::kQuery:
      req.op = Op::kQuery;
      if (!read_serial(r, payload, req.serial) || req.serial.empty() ||
          !read_trace_id(r, payload, req.trace_id)) {
        return std::nullopt;
      }
      return req;
    case Op::kStats:
      req.op = Op::kStats;
      if (!read_trace_id(r, payload, req.trace_id)) return std::nullopt;
      return req;
    case Op::kShutdown:
      req.op = Op::kShutdown;
      if (!read_trace_id(r, payload, req.trace_id)) return std::nullopt;
      return req;
  }
  return std::nullopt;
}

std::string encode_ingest_response(const IngestResponse& r) {
  std::string out;
  out.reserve(1 + 4 * 8 + 1);
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  put_u64(out, r.accepted);
  put_u64(out, r.stale);
  put_u64(out, r.quarantined);
  put_u64(out, r.journal_failed);
  put_u8(out, r.degraded ? 1 : 0);
  return out;
}

std::string encode_query_response(const QueryResponse& r) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  put_u8(out, r.known ? 1 : 0);
  if (r.known) {
    put_u8(out, r.alarmed ? 1 : 0);
    put_u64(out, static_cast<std::uint64_t>(r.alarm_hour));
    put_u64(out, static_cast<std::uint64_t>(r.samples_seen));
    put_u64(out, static_cast<std::uint64_t>(r.last_hour));
  }
  return out;
}

std::string encode_stats_response(const StatsResponse& r) {
  std::string out;
  out.reserve(1 + 6 * 8 + 2);
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  put_u64(out, r.drives);
  put_u64(out, r.samples);
  put_u64(out, r.alarms);
  put_u8(out, r.degraded ? 1 : 0);
  put_u64(out, r.generation);
  put_u64(out, r.shadow_samples);
  put_u64(out, r.shadow_divergence);
  put_u8(out, r.last_outcome);
  return out;
}

std::string encode_shutdown_response() {
  return std::string(1, static_cast<char>(Status::kOk));
}

std::string encode_error_response(Status status, std::string_view message) {
  std::string out;
  if (message.size() > 0xFFFF) message = message.substr(0, 0xFFFF);
  out.reserve(1 + 2 + message.size());
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u16(out, static_cast<std::uint16_t>(message.size()));
  out.append(message);
  return out;
}

std::optional<Status> decode_status(std::string_view payload) {
  if (payload.empty()) return std::nullopt;
  const auto s = static_cast<std::uint8_t>(payload[0]);
  if (s > static_cast<std::uint8_t>(Status::kError)) return std::nullopt;
  return static_cast<Status>(s);
}

std::optional<IngestResponse> decode_ingest_response(
    std::string_view payload) {
  Reader r{payload};
  std::uint8_t status = 0, degraded = 0;
  IngestResponse res;
  if (!r.u8(status) || status != static_cast<std::uint8_t>(Status::kOk) ||
      !r.u64(res.accepted) || !r.u64(res.stale) || !r.u64(res.quarantined) ||
      !r.u64(res.journal_failed) || !r.u8(degraded)) {
    return std::nullopt;
  }
  res.degraded = degraded != 0;
  return res;
}

std::optional<QueryResponse> decode_query_response(std::string_view payload) {
  Reader r{payload};
  std::uint8_t status = 0, known = 0;
  QueryResponse res;
  if (!r.u8(status) || status != static_cast<std::uint8_t>(Status::kOk) ||
      !r.u8(known)) {
    return std::nullopt;
  }
  res.known = known != 0;
  if (!res.known) return res;
  std::uint8_t alarmed = 0;
  std::uint64_t alarm_hour = 0, seen = 0, last_hour = 0;
  if (!r.u8(alarmed) || !r.u64(alarm_hour) || !r.u64(seen) ||
      !r.u64(last_hour)) {
    return std::nullopt;
  }
  res.alarmed = alarmed != 0;
  res.alarm_hour = static_cast<std::int64_t>(alarm_hour);
  res.samples_seen = static_cast<std::int64_t>(seen);
  res.last_hour = static_cast<std::int64_t>(last_hour);
  return res;
}

std::optional<StatsResponse> decode_stats_response(std::string_view payload) {
  Reader r{payload};
  std::uint8_t status = 0, degraded = 0;
  StatsResponse res;
  if (!r.u8(status) || status != static_cast<std::uint8_t>(Status::kOk) ||
      !r.u64(res.drives) || !r.u64(res.samples) || !r.u64(res.alarms) ||
      !r.u8(degraded) || !r.u64(res.generation) ||
      !r.u64(res.shadow_samples) || !r.u64(res.shadow_divergence) ||
      !r.u8(res.last_outcome)) {
    return std::nullopt;
  }
  res.degraded = degraded != 0;
  return res;
}

std::optional<std::string> decode_error_message(std::string_view payload) {
  Reader r{payload};
  std::uint8_t status = 0;
  std::uint16_t len = 0;
  if (!r.u8(status) || status == static_cast<std::uint8_t>(Status::kOk) ||
      !r.u16(len) || !r.remaining(len)) {
    return std::nullopt;
  }
  return std::string(payload.substr(r.pos, len));
}

std::string frame_payload(std::string_view payload) {
  return store::frame_record(payload);
}

namespace {
std::uint32_t read_u32_le(const std::string& buf, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(buf[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}
}  // namespace

void FrameParser::feed(std::string_view bytes) {
  if (corrupt_) return;  // framing is untrusted; hold nothing more
  // Compact before growing: pos_ only moves forward within one buffer
  // generation, so this bounds memory at one frame plus one read() worth.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (64u << 10))) {
    buf_.erase(0, pos_);
    scan_ -= pos_;
    pos_ = 0;
  }
  buf_.append(bytes);
  // Validate every newly complete length prefix *now*, before the bytes it
  // announces are allowed to accumulate: frame boundaries chain through the
  // declared lengths, so headers can be walked without touching payloads.
  while (buf_.size() - scan_ >= store::kFrameHeaderBytes) {
    const std::uint32_t len = read_u32_le(buf_, scan_);
    if (len == 0 || len > kMaxWirePayloadBytes) {
      corrupt_ = true;
      std::string().swap(buf_);  // release, don't just clear
      pos_ = scan_ = 0;
      return;
    }
    if (buf_.size() - scan_ < store::kFrameHeaderBytes + len) break;
    scan_ += store::kFrameHeaderBytes + len;
  }
}

FrameParser::Result FrameParser::next(std::string& payload) {
  if (corrupt_) return Result::kCorrupt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < store::kFrameHeaderBytes) return Result::kNeedMore;
  const std::uint32_t len = read_u32_le(buf_, pos_);
  const std::uint32_t crc = read_u32_le(buf_, pos_ + 4);
  if (len == 0 || len > kMaxWirePayloadBytes) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  if (avail < store::kFrameHeaderBytes + len) return Result::kNeedMore;
  const char* data = buf_.data() + pos_ + store::kFrameHeaderBytes;
  if (store::crc32(data, len) != crc) {
    corrupt_ = true;
    std::string().swap(buf_);
    pos_ = scan_ = 0;
    return Result::kCorrupt;
  }
  payload.assign(data, len);
  pos_ += store::kFrameHeaderBytes + len;
  return Result::kFrame;
}

}  // namespace hdd::serve
