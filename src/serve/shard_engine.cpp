#include "serve/shard_engine.h"

#include <algorithm>
#include <filesystem>
#include <span>

#include "common/error.h"
#include "common/log.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"

namespace fs = std::filesystem;

namespace hdd::serve {

namespace {

// FNV-1a, not std::hash: shard routing is part of the on-disk layout, so
// it must be identical across processes, builds and standard libraries.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardEngine::ShardEngine(ShardEngineConfig config) {
  HDD_REQUIRE(config.shards >= 1, "serve needs at least one shard");
  HDD_REQUIRE(!config.dir.empty(), "serve needs a store directory");

  // A store laid out for more shards than we were configured with would
  // silently re-route serials into fresh empty shards; refuse instead.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const std::string digits = name.substr(6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    HDD_REQUIRE(std::stoull(digits) < config.shards,
                "store " + config.dir + " holds " + name +
                    " but only " + std::to_string(config.shards) +
                    " shard(s) are configured");
  }

  core::FleetRuntimeConfig rt = config.runtime;
  if (!rt.model_path.empty()) {
    // Load once, share across shards: the model is immutable at serve time.
    owned_scorer_ = core::make_tree_scorer(
        core::load_tree_file(rt.model_path, rt.load));
    rt.model_path.clear();
    rt.scorer = owned_scorer_.get();
  }

  shards_.resize(config.shards);
  for (std::size_t k = 0; k < config.shards; ++k) {
    core::FleetRuntimeConfig shard_rt = rt;
    shard_rt.store_dir =
        (fs::path(config.dir) / ("shard-" + std::to_string(k))).string();
    shards_[k].runtime = std::make_unique<core::FleetRuntime>(shard_rt);
  }
}

std::size_t ShardEngine::shard_of(std::string_view serial) const {
  return static_cast<std::size_t>(fnv1a(serial) % shards_.size());
}

std::size_t ShardEngine::resume() {
  const obs::ScopedSpan span("serve.resume");
  std::size_t replayed = 0;
  for (Shard& sh : shards_) {
    if (sh.runtime->store().drive_count() == 0) continue;
    // drop_partial_tail=false: serve drives report on their own clocks,
    // so a trailing hour present for only some drives is normal, not a
    // torn lockstep interval. Torn *records* were already truncated by
    // store recovery.
    const auto r = sh.runtime->resume(/*drop_partial_tail=*/false);
    replayed += r.samples_replayed;
    core::FleetScorer& fleet = sh.runtime->fleet();
    sh.index.clear();
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      sh.index.emplace(fleet.serial(i), i);
    }
  }

  // Generation reconciliation: a promotion journals shard by shard, so a
  // crash mid-way leaves a prefix on generation N and the rest on N-1. The
  // newest journaled record (same model text in every shard that has it)
  // wins; lagging shards journal it and swap, restoring one fleet-wide
  // model.
  std::uint64_t newest = 0;
  const store::GenerationRecord* best = nullptr;
  for (Shard& sh : shards_) {
    if (sh.runtime->swappable() == nullptr) continue;
    const auto& rec = sh.runtime->store().latest_generation();
    if (rec.has_value() && rec->generation > newest) {
      newest = rec->generation;
      best = &*rec;
    }
  }
  if (best != nullptr) {
    auto model = pipeline::load_generation_model(best->model_text);
    for (Shard& sh : shards_) {
      if (sh.runtime->swappable() == nullptr) continue;
      if (sh.runtime->model_generation() >= newest) continue;
      log_warn() << "serve: shard missed generation " << newest
                 << " (crash mid-promotion); reconciling";
      sh.runtime->store().append_generation(newest, best->model_text);
      sh.runtime->swappable()->swap(model, newest);
    }
  }
  return replayed;
}

std::uint64_t ShardEngine::max_generation() const {
  std::uint64_t g = 0;
  for (const Shard& sh : shards_) {
    g = std::max(g, sh.runtime->model_generation());
  }
  return g;
}

std::size_t ShardEngine::drive_index(Shard& shard, const std::string& serial) {
  const auto it = shard.index.find(serial);
  if (it != shard.index.end()) return it->second;
  const std::size_t i = shard.runtime->fleet().add_drive(serial);
  shard.index.emplace(serial, i);
  return i;
}

IngestResponse ShardEngine::ingest(std::size_t k, const IngestBatch& batch) {
  HDD_REQUIRE(k < shards_.size(), "shard index out of range");
  Shard& sh = shards_[k];
  core::FleetScorer& fleet = sh.runtime->fleet();
  IngestResponse res;
  const std::size_t n = batch.samples.size();
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && batch.serials[j] == batch.serials[i]) ++j;
    const std::size_t idx = drive_index(sh, batch.serials[i]);
    const auto r = fleet.ingest_drive(
        idx, std::span<const smart::Sample>(batch.samples.data() + i, j - i));
    res.accepted += r.accepted;
    res.stale += r.stale;
    res.quarantined += r.quarantined;
    if (r.journal_failed) ++res.journal_failed;
    i = j;
  }
  res.degraded = fleet.degraded();
  return res;
}

QueryResponse ShardEngine::query(const std::string& serial) const {
  const Shard& sh = shards_[shard_of(serial)];
  QueryResponse res;
  const auto it = sh.index.find(serial);
  if (it == sh.index.end()) return res;
  const core::FleetScorer& fleet = sh.runtime->fleet();
  const core::DriveVoteState& state = fleet.state(it->second);
  res.known = true;
  res.alarmed = state.alarmed();
  res.alarm_hour = state.alarm_hour();
  res.samples_seen = state.samples_seen();
  const auto id = sh.runtime->store().find_drive(serial);
  if (id) res.last_hour = sh.runtime->store().drive(*id).last_hour;
  return res;
}

StatsResponse ShardEngine::shard_stats(std::size_t k) const {
  HDD_REQUIRE(k < shards_.size(), "shard index out of range");
  const core::FleetRuntime& rt = *shards_[k].runtime;
  StatsResponse res;
  res.drives = rt.fleet().size();
  res.alarms = rt.fleet().alarm_count();
  res.degraded = rt.fleet().degraded();
  res.samples = rt.store().sample_count();
  res.generation = rt.model_generation();
  const auto sh = rt.fleet().shadow_stats();
  res.shadow_samples = sh.samples;
  res.shadow_divergence = sh.divergence;
  return res;
}

StatsResponse ShardEngine::stats() const {
  StatsResponse res;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const StatsResponse s = shard_stats(k);
    res.drives += s.drives;
    res.samples += s.samples;
    res.alarms += s.alarms;
    res.degraded = res.degraded || s.degraded;
    res.generation = std::max(res.generation, s.generation);
    res.shadow_samples += s.shadow_samples;
    res.shadow_divergence += s.shadow_divergence;
  }
  return res;
}

void ShardEngine::seal() {
  for (Shard& sh : shards_) sh.runtime->seal();
}

}  // namespace hdd::serve
