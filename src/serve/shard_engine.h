// ShardEngine — the synchronous core of the serve daemon.
//
// The fleet is partitioned into K shards by a stable hash of the drive
// serial. Each shard owns a full journaled scoring stack (one
// core::FleetRuntime: TelemetryStore in <dir>/shard-<k> plus FleetScorer)
// over one shared loaded model, and is single-threaded by contract — the
// Server gives each shard its own worker thread, and the fault-injection
// property tests drive the engine directly on the test thread so a
// simulated crash (io::CrashPoint) is catchable.
//
// Crash-resume: resume() replays every shard's journal through
// FleetScorer::resume_from, so a killed daemon restarts with
// byte-identical alarm state; re-sent batches are dropped sample-by-sample
// by the stale rule in FleetScorer::ingest_drive. The shard count is part
// of the on-disk layout (the hash routes a serial to the same subdir every
// run) — opening a store laid out for more shards than configured is a
// ConfigError, not silent re-routing.
//
// Per-drive memory is bounded: each drive holds one DriveVoteState ring
// (N voters) plus a history window trimmed to history_hours, regardless
// of how many samples it ever ingested.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/runtime.h"
#include "serve/wire.h"

namespace hdd::serve {

struct ShardEngineConfig {
  // Root directory; shard k journals into <dir>/shard-<k>.
  std::string dir;
  std::size_t shards = 1;
  // Template for every shard's runtime: model (path or scorer), store
  // options, vote/feature/quarantine settings. store_dir is ignored (the
  // engine derives it); a model_path is loaded once and shared.
  core::FleetRuntimeConfig runtime;
};

class ShardEngine {
 public:
  explicit ShardEngine(ShardEngineConfig config);

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  // Stable serial -> shard routing (FNV-1a, identical across restarts).
  std::size_t shard_of(std::string_view serial) const;

  // Replays every shard's journal; returns total samples replayed. With a
  // hot-swappable runtime, also reconciles model generations across shards:
  // a crash mid-promotion journals the new generation into only a prefix of
  // the shards, so the lagging shards re-journal and swap to the newest
  // generation found anywhere — after resume, every shard scores with one
  // well-defined model again.
  std::size_t resume();

  // Newest promoted generation across shards (0 = seed model everywhere).
  std::uint64_t max_generation() const;

  // Ingest one batch routed to shard k (every entry's serial must hash
  // there). Consecutive same-serial runs become single ingest_drive
  // batches. Unknown serials are registered on first sight.
  IngestResponse ingest(std::size_t k, const IngestBatch& batch);

  QueryResponse query(const std::string& serial) const;

  // Whole-engine stats; only safe when nothing is mutating any shard.
  StatsResponse stats() const;
  // One shard's contribution — the Server gathers these on each shard's
  // own worker so stats never race a concurrent ingest.
  StatsResponse shard_stats(std::size_t k) const;

  // Durably flushes every shard's journal (fsync).
  void seal();

  core::FleetRuntime& shard(std::size_t k) { return *shards_[k].runtime; }

 private:
  struct Shard {
    std::unique_ptr<core::FleetRuntime> runtime;
    std::unordered_map<std::string, std::size_t> index;  // serial -> fleet id
  };

  std::size_t drive_index(Shard& shard, const std::string& serial);

  std::unique_ptr<core::SampleScorer> owned_scorer_;  // shared loaded model
  std::vector<Shard> shards_;
};

}  // namespace hdd::serve
