// Wire codec for the hddpredict serve daemon.
//
// The TCP protocol reuses the telemetry store's framing idiom
// (store/format.h): every message is one CRC-framed record,
//
//   frame    = length u32 | crc u32 | payload     -- CRC-32 of the payload
//   request  = op u8 | body [| trace_id u64]
//     op 1 (ingest):   count u32, then per sample:
//                      serial_len u16 | serial | hour i64 | 12 x f32 attrs
//     op 2 (query):    serial_len u16 | serial
//     op 3 (stats):    (empty)
//     op 4 (shutdown): (empty)
//
// The trailing trace_id is optional: a tracing client appends its current
// span's trace id (never 0) after the body so the daemon's spans join the
// caller's trace; an old client simply omits it and decodes exactly as
// before — the decoder treats "exactly 8 bytes past the body" as a trace
// id and any other surplus as the protocol error it always was. Old
// servers reject the field (trailing bytes), so clients only attach it
// when tracing is actually recording.
//   response = status u8 | body
//     status 0 (ok):          body is op-specific (below)
//     status 1 (bad request) |
//     status 2 (error):       message_len u16 | message
//
//   ingest ok body: accepted u64 | stale u64 | quarantined u64 |
//                   journal_failed u64 | degraded u8
//   query  ok body: known u8 [| alarmed u8 | alarm_hour i64 |
//                   samples_seen i64 | last_hour i64]
//   stats  ok body: drives u64 | samples u64 | alarms u64 | degraded u8 |
//                   generation u64 | shadow_samples u64 |
//                   shadow_divergence u64 | last_outcome u8
//   shutdown ok body: (empty)
//
// All integers little-endian, floats IEEE-754 bit patterns — identical
// conventions to the on-disk format, so the same Reader/put_* primitives
// decode both. A frame that fails its CRC, declares a payload over
// kMaxWirePayloadBytes, or holds a body its op cannot parse is a protocol
// error: the server answers kBadRequest (when it can) and closes the
// connection; it never crashes on hostile bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "smart/drive.h"

namespace hdd::serve {

// TCP frames carry whole ingest batches; 4 MiB bounds per-connection
// buffering (~60k samples a frame) without capping useful batch sizes.
inline constexpr std::uint32_t kMaxWirePayloadBytes = 4u << 20;

enum class Op : std::uint8_t {
  kIngest = 1,
  kQuery = 2,
  kStats = 3,
  kShutdown = 4,
};

enum class Status : std::uint8_t { kOk = 0, kBadRequest = 1, kError = 2 };

// --- Requests ---------------------------------------------------------------

// One ingest batch: samples[i] belongs to the drive named serials[i].
// Encoders keep (serial, sample) pairs adjacent so the shard engine can
// ingest consecutive same-drive runs as single batches.
struct IngestBatch {
  std::vector<std::string> serials;
  std::vector<smart::Sample> samples;
};

struct Request {
  Op op = Op::kStats;
  IngestBatch ingest;  // kIngest
  std::string serial;  // kQuery
  std::uint64_t trace_id = 0;  // 0 = request arrived untraced
};

// Payload encoders (unframed — wrap with frame_payload to put on the wire).
// A nonzero trace_id appends the optional trailing field.
std::string encode_ingest_request(const IngestBatch& batch,
                                  std::uint64_t trace_id = 0);
std::string encode_query_request(std::string_view serial,
                                 std::uint64_t trace_id = 0);
std::string encode_stats_request(std::uint64_t trace_id = 0);
std::string encode_shutdown_request(std::uint64_t trace_id = 0);

// nullopt on an unknown op or a body that does not match its op's layout.
std::optional<Request> decode_request(std::string_view payload);

// --- Responses --------------------------------------------------------------

struct IngestResponse {
  std::uint64_t accepted = 0;
  std::uint64_t stale = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t journal_failed = 0;
  bool degraded = false;
};

struct QueryResponse {
  bool known = false;
  bool alarmed = false;
  std::int64_t alarm_hour = -1;
  std::int64_t samples_seen = 0;
  std::int64_t last_hour = -1;
};

struct StatsResponse {
  std::uint64_t drives = 0;
  std::uint64_t samples = 0;
  std::uint64_t alarms = 0;
  bool degraded = false;
  // Update-pipeline status: the live model generation (max across shards;
  // 0 = the seed model), shadow-scoring progress, and the last retrain
  // cycle's pipeline::Outcome code (0 = no cycle has run).
  std::uint64_t generation = 0;
  std::uint64_t shadow_samples = 0;
  std::uint64_t shadow_divergence = 0;
  std::uint8_t last_outcome = 0;
};

std::string encode_ingest_response(const IngestResponse& r);
std::string encode_query_response(const QueryResponse& r);
std::string encode_stats_response(const StatsResponse& r);
std::string encode_shutdown_response();
std::string encode_error_response(Status status, std::string_view message);

// The decoded status byte plus whichever body matches it; `error` holds
// the message for kBadRequest/kError.
std::optional<Status> decode_status(std::string_view payload);
std::optional<IngestResponse> decode_ingest_response(std::string_view payload);
std::optional<QueryResponse> decode_query_response(std::string_view payload);
std::optional<StatsResponse> decode_stats_response(std::string_view payload);
std::optional<std::string> decode_error_message(std::string_view payload);

// --- Framing ----------------------------------------------------------------

// Wraps a payload in the length+CRC frame (store::frame_record).
std::string frame_payload(std::string_view payload);

// Incremental frame extractor over a TCP byte stream. feed() bytes as they
// arrive; next() yields complete, CRC-verified payloads. kCorrupt is
// sticky — framing can't be trusted past a bad frame, so the connection
// must be dropped.
//
// Length prefixes are validated at feed() time, as soon as the 8 header
// bytes of each frame are buffered: a hostile "4 GiB follows" prefix trips
// kCorrupt immediately and releases the buffer, so a peer can never make
// the parser hold more than one valid frame's worth of unparsed bytes. A
// corrupt parser also stops buffering further input.
class FrameParser {
 public:
  enum class Result { kNeedMore, kFrame, kCorrupt };

  void feed(std::string_view bytes);
  Result next(std::string& payload);

  // Bytes currently buffered. With a caller that drains next() after each
  // feed (the server does), this is bounded by kMaxWirePayloadBytes +
  // header + one read() chunk.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;   // start of the next undrained frame
  std::size_t scan_ = 0;  // start of the next length-unvalidated header
  bool corrupt_ = false;
};

}  // namespace hdd::serve
