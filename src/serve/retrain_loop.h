// RetrainLoop — the serve daemon's continuous model-update controller.
//
// A background thread runs the pipeline::RetrainScheduler against the
// daemon's own journals: on each due tick it materializes the training
// window from every shard's TelemetryStore (on that shard's worker, so
// reads never race ingest), trains + gates one candidate via
// pipeline::train_and_gate, and promotes it fleet-wide.
//
// Promotion state machine (DESIGN.md §10):
//
//   idle --due--> train+gate --reject--> idle          (counted, no swap)
//                     |pass
//                     v
//        [min_shadow_samples == 0]  --> promote
//        [min_shadow_samples  > 0]  --> shadowing --enough samples--> promote
//
// "shadowing" installs the candidate as every shard's FleetScorer shadow:
// it scores live traffic next to the incumbent (divergence counters in
// /metrics) but cannot raise real alarms; promotion waits until the fleet
// has shadow-scored the configured sample count. Promotion itself is
// journal-first and shard-by-shard: each shard's generation record is
// appended on that shard's worker (serialized with its ingest writes), and
// only then is the SwappableScorer swapped — a kill -9 anywhere in between
// is healed by ShardEngine::resume()'s generation reconciliation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "pipeline/pipeline.h"
#include "smart/drive.h"

namespace hdd::serve {

class Server;
class ShardEngine;

struct RetrainLoopConfig {
  pipeline::PipelineConfig pipeline;
  // Labeled failure records shared across retrains (the paper's shared
  // failed pool); the store's own drives are the good population.
  std::vector<smart::DriveRecord> failed_pool;
  // Scheduler poll cadence of the background thread.
  int poll_interval_ms = 500;
};

class RetrainLoop {
 public:
  // Every shard of `engine` must be hot-swappable
  // (FleetRuntimeConfig::hot_swappable); both references must outlive the
  // loop.
  RetrainLoop(ShardEngine& engine, Server& server, RetrainLoopConfig config);
  ~RetrainLoop();

  RetrainLoop(const RetrainLoop&) = delete;
  RetrainLoop& operator=(const RetrainLoop&) = delete;

  // Spawns / joins the background thread. stop() is idempotent and safe
  // without start().
  void start();
  void stop();

  // One scheduler tick, synchronous. Call either from the background
  // thread (start()) or directly (tests, single-shot tools) — never both.
  // `force` bypasses the due-check, and promotes a shadowing candidate
  // regardless of accumulated shadow samples.
  pipeline::CycleResult tick(bool force = false);

  pipeline::CycleResult last_result() const;
  bool shadowing() const { return pending_ != nullptr; }

 private:
  pipeline::CycleResult maybe_promote(bool force);
  void promote(std::shared_ptr<const core::SampleScorer> candidate,
               pipeline::CycleResult& r);
  void publish(const pipeline::CycleResult& r);
  std::uint64_t fleet_shadow_samples() const;
  void loop();

  ShardEngine* engine_;
  Server* server_;
  RetrainLoopConfig config_;
  pipeline::RetrainScheduler scheduler_;
  pipeline::PipelineMetrics metrics_;

  // Shadowing state; only the tick caller touches it.
  std::shared_ptr<const core::SampleScorer> pending_;
  std::uint64_t shadow_baseline_ = 0;
  double pending_far_ = 0.0;
  double pending_fdr_ = 0.0;

  mutable Mutex mu_{lock_order::Rank::kRetrainResult, "retrain-result"};
  pipeline::CycleResult last_ HDD_GUARDED_BY(mu_);

  std::thread thread_;
  Mutex stop_mu_{lock_order::Rank::kRetrainStop, "retrain-stop"};
  CondVar stop_cv_;
  bool stop_requested_ HDD_GUARDED_BY(stop_mu_) = false;
};

}  // namespace hdd::serve
