#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "obs/trace.h"

namespace hdd::serve {

namespace {

void send_all_or_throw(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DataError("client: send(): " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

// Throws when the payload is an error response; otherwise checks kOk.
void require_ok(std::string_view payload) {
  const auto status = decode_status(payload);
  if (!status) throw DataError("client: empty response");
  if (*status == Status::kOk) return;
  const auto msg = decode_error_message(payload);
  throw DataError("client: server error: " + msg.value_or("(no message)"));
}

}  // namespace

Client::~Client() { close(); }

void Client::connect(const std::string& host, int port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw DataError("client: socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ConfigError("client: bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw DataError("client: cannot connect to " + host + ":" +
                    std::to_string(port) + ": " + what);
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  parser_ = FrameParser();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Client::read_frame() {
  std::string payload;
  char buf[64 << 10];
  for (;;) {
    const FrameParser::Result res = parser_.next(payload);
    if (res == FrameParser::Result::kFrame) return payload;
    if (res == FrameParser::Result::kCorrupt) {
      throw DataError("client: corrupt response frame");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw DataError("client: connection closed by server");
    parser_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

std::string Client::request(std::string_view payload) {
  HDD_REQUIRE(fd_ >= 0, "client is not connected");
  send_all_or_throw(fd_, frame_payload(payload));
  return read_frame();
}

std::string Client::roundtrip(std::string_view framed) {
  HDD_REQUIRE(fd_ >= 0, "client is not connected");
  send_all_or_throw(fd_, framed);
  return read_frame();
}

// Each op wraps itself in a span and forwards the resulting trace id on
// the wire (the encoder omits the field when tracing is off, keeping the
// frames byte-identical to the pre-trace protocol for old servers).
IngestResponse Client::ingest(const IngestBatch& batch) {
  const obs::ScopedSpan span("client.ingest", "samples",
                             static_cast<std::uint64_t>(batch.samples.size()));
  const std::string payload =
      request(encode_ingest_request(batch, span.trace_id()));
  require_ok(payload);
  const auto r = decode_ingest_response(payload);
  if (!r) throw DataError("client: malformed ingest response");
  return *r;
}

QueryResponse Client::query(std::string_view serial) {
  const obs::ScopedSpan span("client.query");
  const std::string payload =
      request(encode_query_request(serial, span.trace_id()));
  require_ok(payload);
  const auto r = decode_query_response(payload);
  if (!r) throw DataError("client: malformed query response");
  return *r;
}

StatsResponse Client::stats() {
  const obs::ScopedSpan span("client.stats");
  const std::string payload = request(encode_stats_request(span.trace_id()));
  require_ok(payload);
  const auto r = decode_stats_response(payload);
  if (!r) throw DataError("client: malformed stats response");
  return *r;
}

void Client::shutdown_server() {
  const obs::ScopedSpan span("client.shutdown");
  const std::string payload =
      request(encode_shutdown_request(span.trace_id()));
  require_ok(payload);
}

std::string Client::http_get(const std::string& host, int port,
                             const std::string& path) {
  Client c;
  c.connect(host, port);
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  send_all_or_throw(c.fd_, req);
  std::string response;
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = ::recv(c.fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t sep = response.find("\r\n\r\n");
  if (sep == std::string::npos) {
    throw DataError("client: malformed HTTP response");
  }
  if (response.compare(0, 12, "HTTP/1.1 200") != 0) {
    throw DataError("client: HTTP error: " +
                    response.substr(0, response.find("\r\n")));
  }
  return response.substr(sep + 4);
}

}  // namespace hdd::serve
