// Client — blocking wire-protocol client for the serve daemon.
//
// One TCP connection, synchronous request/response. Used by the
// `hddpredict client` command, the serve tests and the micro_serve load
// bench. Protocol errors (corrupt frame, server error status) surface as
// DataError; the connection is not reusable after one.
#pragma once

#include <string>
#include <string_view>

#include "serve/wire.h"

namespace hdd::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Throws DataError when the daemon cannot be reached.
  void connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  IngestResponse ingest(const IngestBatch& batch);
  QueryResponse query(std::string_view serial);
  StatsResponse stats();
  // Asks the daemon to shut down (it still replies before exiting).
  void shutdown_server();

  // Raw round-trip for the load bench: send already-framed bytes, return
  // the response payload (status byte + body).
  std::string roundtrip(std::string_view framed);

  // One-shot HTTP GET against the daemon's scrape endpoint; returns the
  // response body (e.g. the Prometheus exposition for path "/metrics").
  static std::string http_get(const std::string& host, int port,
                              const std::string& path);

 private:
  // Frames `payload`, sends it, reads exactly one response frame.
  std::string request(std::string_view payload);
  std::string read_frame();

  int fd_ = -1;
  FrameParser parser_;
};

}  // namespace hdd::serve
