#include "serve/retrain_loop.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/shard_engine.h"
#include "store/telemetry_store.h"

namespace hdd::serve {

RetrainLoop::RetrainLoop(ShardEngine& engine, Server& server,
                         RetrainLoopConfig config)
    : engine_(&engine),
      server_(&server),
      config_(std::move(config)),
      scheduler_(config_.pipeline.scheduler),
      metrics_(pipeline::make_pipeline_metrics(config_.pipeline.metrics)) {
  for (std::size_t k = 0; k < engine_->shard_count(); ++k) {
    HDD_REQUIRE(engine_->shard(k).swappable() != nullptr,
                "retrain loop needs hot-swappable shard runtimes");
  }
  metrics_.generation->set(static_cast<double>(engine_->max_generation()));
}

RetrainLoop::~RetrainLoop() { stop(); }

void RetrainLoop::start() {
  thread_ = std::thread([this] { loop(); });
}

void RetrainLoop::stop() {
  {
    MutexLock lock(&stop_mu_);
    stop_requested_ = true;
    stop_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void RetrainLoop::loop() {
  for (;;) {
    {
      // Wait out the poll interval unless stop() interrupts it. The
      // deadline is absolute so spurious wakeups don't extend the wait.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(config_.poll_interval_ms);
      MutexLock lock(&stop_mu_);
      while (!stop_requested_ &&
             stop_cv_.wait_until(stop_mu_, deadline) !=
                 std::cv_status::timeout) {
      }
      if (stop_requested_) return;
    }
    try {
      (void)tick(/*force=*/false);
    } catch (const std::exception& e) {
      // A failed cycle must never take the daemon down; the scheduler was
      // marked (or will re-trigger), and the incumbent keeps scoring.
      log_warn() << "retrain loop: cycle failed: " << e.what();
    }
  }
}

pipeline::CycleResult RetrainLoop::last_result() const {
  MutexLock lock(&mu_);
  return last_;
}

void RetrainLoop::publish(const pipeline::CycleResult& r) {
  {
    MutexLock lock(&mu_);
    last_ = r;
  }
  if (r.outcome != pipeline::Outcome::kSkipped) {
    server_->set_last_outcome(static_cast<std::uint8_t>(r.outcome));
  }
}

std::uint64_t RetrainLoop::fleet_shadow_samples() const {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < engine_->shard_count(); ++k) {
    total += engine_->shard(k).fleet().shadow_stats().samples;
  }
  return total;
}

pipeline::CycleResult RetrainLoop::tick(bool force) {
  // Each cycle is its own trace (never a child of whatever request
  // context happens to linger on the caller's thread).
  const obs::WithTraceContext fresh(obs::TraceContext{});
  const obs::ScopedSpan cycle("retrain.cycle");
  if (pending_ != nullptr) return maybe_promote(force);

  // Scheduler watermarks, each shard read on its own worker.
  std::uint64_t total = 0;
  std::int64_t last = -1;
  {
    const obs::ScopedSpan span("retrain.watermarks");
    for (std::size_t k = 0; k < engine_->shard_count(); ++k) {
      (void)server_->run_on_shard(k, [&] {
        const store::TelemetryStore& st = engine_->shard(k).store();
        total += st.sample_count();
        last = std::max(last, st.last_hour());
      });
    }
  }

  pipeline::CycleResult r;
  r.generation = engine_->max_generation();
  if (!force && !scheduler_.due(total, last)) {
    r.outcome = pipeline::Outcome::kSkipped;
    return r;
  }

  // Materialize the training window from every shard's journal.
  const auto window =
      scheduler_.window_hours(std::max<std::int64_t>(last, 0));
  std::vector<smart::DriveRecord> goods;
  {
    const obs::ScopedSpan span("retrain.materialize");
    for (std::size_t k = 0; k < engine_->shard_count(); ++k) {
      (void)server_->run_on_shard(k, [&] {
        store::TelemetryStore& st = engine_->shard(k).store();
        for (std::uint32_t id = 0; id < st.drive_count(); ++id) {
          smart::DriveRecord rec;
          rec.serial = st.drive(id).serial;
          rec.samples = st.read_drive(id, window.first, window.second - 1);
          goods.push_back(std::move(rec));
        }
      });
    }
  }
  const int weeks = static_cast<int>((window.second - window.first) / 168);
  auto gate = pipeline::train_and_gate(std::move(goods), config_.failed_pool,
                                       weeks, config_.pipeline);
  scheduler_.mark(total, last);

  r.outcome = gate.outcome;
  r.val_far = gate.val_far;
  r.val_fdr = gate.val_fdr;
  r.reason = std::move(gate.reason);
  if (gate.outcome != pipeline::Outcome::kPromoted) {
    metrics_.record(gate.outcome);
    log_info() << "retrain loop: candidate "
               << pipeline::outcome_name(gate.outcome)
               << (r.reason.empty() ? "" : ": " + r.reason);
    publish(r);
    return r;
  }

  if (config_.pipeline.min_shadow_samples == 0) {
    metrics_.record(pipeline::Outcome::kPromoted);
    promote(std::move(gate.candidate), r);
    publish(r);
    return r;
  }

  // Gates passed but the candidate must first prove itself on live
  // traffic: install it as every shard's shadow and defer promotion.
  metrics_.cycles->inc();
  pending_ = std::move(gate.candidate);
  pending_far_ = r.val_far;
  pending_fdr_ = r.val_fdr;
  shadow_baseline_ = fleet_shadow_samples();
  for (std::size_t k = 0; k < engine_->shard_count(); ++k) {
    engine_->shard(k).fleet().set_shadow(pending_);
  }
  r.outcome = pipeline::Outcome::kSkipped;
  r.reason = "shadow-scoring candidate before promotion";
  log_info() << "retrain loop: candidate passed gates; shadow-scoring "
             << config_.pipeline.min_shadow_samples
             << " samples before promotion";
  publish(r);
  return r;
}

pipeline::CycleResult RetrainLoop::maybe_promote(bool force) {
  pipeline::CycleResult r;
  r.generation = engine_->max_generation();
  r.val_far = pending_far_;
  r.val_fdr = pending_fdr_;
  const std::uint64_t scored = fleet_shadow_samples() - shadow_baseline_;
  if (!force && scored < config_.pipeline.min_shadow_samples) {
    r.outcome = pipeline::Outcome::kSkipped;
    std::ostringstream os;
    os << "shadowing: " << scored << "/"
       << config_.pipeline.min_shadow_samples << " samples";
    r.reason = os.str();
    return r;
  }
  metrics_.promotions->inc();
  promote(std::move(pending_), r);
  pending_ = nullptr;
  publish(r);
  return r;
}

void RetrainLoop::promote(
    std::shared_ptr<const core::SampleScorer> candidate,
    pipeline::CycleResult& r) {
  const obs::ScopedSpan span("retrain.promote");
  std::ostringstream os;
  candidate->save(os);
  const std::string text = std::move(os).str();
  const std::uint64_t next = engine_->max_generation() + 1;

  // Journal-first, shard by shard, each append on that shard's worker so
  // it serializes with the shard's ingest writes. A kill -9 after a prefix
  // of shards leaves mixed generations on disk; ShardEngine::resume()
  // reconciles to the newest on restart.
  for (std::size_t k = 0; k < engine_->shard_count(); ++k) {
    const bool ok = server_->run_on_shard(k, [&] {
      engine_->shard(k).store().append_generation(next, text);
    });
    if (!ok) {
      log_warn() << "retrain loop: shard " << k
                 << " unavailable; its generation record is deferred to "
                    "restart reconciliation";
    }
  }
  // Only after the records are durable does the fleet start scoring with
  // the new model; swap() is safe against concurrent scoring calls.
  for (std::size_t k = 0; k < engine_->shard_count(); ++k) {
    engine_->shard(k).swappable()->swap(candidate, next);
    engine_->shard(k).fleet().set_shadow(nullptr);
  }
  metrics_.generation->set(static_cast<double>(next));
  r.outcome = pipeline::Outcome::kPromoted;
  r.generation = next;
  log_info() << "retrain loop: promoted generation " << next << " (val FAR "
             << r.val_far << ", FDR " << r.val_fdr << ")";
}

}  // namespace hdd::serve
