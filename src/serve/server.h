// Server — the TCP front end of `hddpredict serve`.
//
// Thread model: one acceptor thread (poll over the listen socket and the
// shared shutdown self-pipe), one thread per connection, and one worker
// thread per shard. Connection threads parse frames and partition work;
// every touch of shard state happens on that shard's worker via a bounded
// task queue (backpressure: enqueue blocks when the queue is full), so
// each ShardEngine shard stays single-threaded exactly as its contract
// requires.
//
// The same port speaks two protocols, sniffed from the first bytes of the
// connection: the CRC-framed wire codec (serve/wire.h), or HTTP GET for
// the observability surface — `GET /metrics` renders the process metrics
// registry (obs/exposition.h), `GET /healthz` answers "ok",
// `GET /debug/trace?ms=N` returns the last N ms of the span flight
// recorder as Chrome trace_event JSON (obs/trace.h), and
// `GET /debug/vars` returns a JSON snapshot of build/uptime/shard/model/
// connection state.
//
// Tracing: every wire request runs under a `serve.request` root span
// (adopting the client's trace id when the frame carries one), with
// accept/parse/queue-wait/shard work/respond as child spans; post()
// carries the enqueuer's trace context onto the shard worker.
//
// Shutdown: SIGTERM/SIGINT (io/shutdown.h), the wire shutdown op, or
// stop() all converge on the same sequence — stop accepting, shut down
// open connections, drain and join the shard workers, fsync every shard
// journal (ShardEngine::seal). A crash instead of a shutdown loses only
// un-flushed tail bytes; restart + ShardEngine::resume restores
// byte-identical alarm state.
//
// A worker that hits a simulated crash (io::CrashPoint) marks its shard
// crashed and fails subsequent requests for it, letting the fault harness
// exercise crash-mid-ingest under live concurrent load without taking the
// process down (a real crash takes the process with it; the harness needs
// the daemon to survive so it can be restarted deterministically).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hdd::obs {
class Counter;
class Registry;
}  // namespace hdd::obs

namespace hdd::serve {

class ShardEngine;

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;           // 0 = ephemeral (read the bound port with port())
  std::string port_file;  // if set, the bound port is written here on start
  std::size_t max_queue = 64;  // per-shard queued tasks before backpressure
  // Open-connection cap (0 = unlimited). A connection over the cap gets a
  // clean kError frame ("connection limit reached") and is closed — never
  // a silent drop.
  std::size_t max_conns = 0;
  // Per-connection idle timeout (0 = none): a connection that sends no
  // bytes for this long is closed. Bounds fd lifetime under clients that
  // connect and stall.
  int idle_timeout_ms = 0;
  // Registry rendered by GET /metrics; nullptr = obs::Registry::global().
  obs::Registry* metrics = nullptr;
};

class Server {
 public:
  // The engine must outlive the server.
  Server(ShardEngine& engine, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns the acceptor and shard workers. Throws
  // DataError when the address cannot be bound.
  void start();

  // The bound port (valid after start()).
  int port() const { return port_; }

  // Blocks until shutdown is requested (signal, wire op, or stop() from
  // another thread), then runs the stop sequence.
  void wait();

  // Idempotent graceful stop: close the listener, shut down connections,
  // drain workers, seal the journals.
  void stop();

  // Runs `task` on shard k's worker thread and blocks until it finishes —
  // how the retrain loop touches shard state (stores, training windows)
  // without violating the one-thread-per-shard contract. Returns false
  // (task not run) when the shard is crashed or closed.
  [[nodiscard]] bool run_on_shard(std::size_t k,
                                  const std::function<void()>& task);

  // Pipeline status surfaced in stats responses (set by the retrain loop
  // after each cycle; a pipeline::Outcome code).
  void set_last_outcome(std::uint8_t outcome) {
    last_outcome_.store(outcome, std::memory_order_relaxed);
  }

 private:
  struct ShardWorker {
    std::thread thread;
    Mutex mu{lock_order::Rank::kShardQueue, "shard-queue"};
    CondVar cv_push;  // waiters: enqueuers (backpressure)
    CondVar cv_pop;   // waiters: the worker
    std::deque<std::function<void()>> queue HDD_GUARDED_BY(mu);
    bool closed HDD_GUARDED_BY(mu) = false;
    // A CrashPoint escaped a task on this shard.
    bool crashed HDD_GUARDED_BY(mu) = false;
  };

  // Per-connection trace state: when the connection was accepted, and
  // whether the next request is its first (only that one charges the
  // accept interval to its trace).
  struct ConnTrace {
    std::uint64_t accept_ticks = 0;
    bool first = true;
  };

  void acceptor_loop();
  void connection_loop(int fd);
  void worker_loop(std::size_t k);
  // Enqueues `task` on shard k's worker, blocking while the queue is full
  // (backpressure). Returns false — without running the task — when the
  // shard is crashed or closed. The enqueuer's trace context rides along:
  // the worker runs the task under it, with the queue wait recorded as a
  // "shard.queue_wait" child span.
  [[nodiscard]] bool post(std::size_t k, std::function<void()> task);
  void handle_wire(int fd, const std::string& first, ConnTrace& trace);
  // Handles one decoded request; returns false when the connection must
  // close.
  [[nodiscard]] bool process_request(int fd, std::string& payload,
                                     ConnTrace& trace);
  void handle_http(int fd, const std::string& first);
  // JSON body of GET /debug/vars.
  std::string debug_vars_json();
  [[nodiscard]] bool send_all(int fd, std::string_view bytes);
  // Frames and sends a wire response, recording the encode+send as a
  // "wire.respond" child span of the current request.
  [[nodiscard]] bool send_response(int fd, std::string_view payload);
  // recv() guarded by the idle timeout: returns <= 0 on EOF, error, or
  // idle expiry (like a peer hangup, the connection then closes).
  ssize_t recv_idle(int fd, char* buf, std::size_t cap);

  ShardEngine& engine_;
  ServeOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // stop() -> acceptor poll wakeup
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::thread acceptor_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  Mutex conn_mu_{lock_order::Rank::kServeConns, "serve-conns"};
  std::vector<int> conn_fds_ HDD_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ HDD_GUARDED_BY(conn_mu_);
  Mutex stop_mu_{lock_order::Rank::kServeStop, "serve-stop"};
  std::atomic<std::uint8_t> last_outcome_{0};
  std::chrono::steady_clock::time_point started_{};  // set by start()
  obs::Counter* m_connections_;
  obs::Counter* m_requests_;
  obs::Counter* m_ingested_;
  obs::Counter* m_http_;
  obs::Counter* m_conns_rejected_;
};

}  // namespace hdd::serve
