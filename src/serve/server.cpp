#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "io/env.h"
#include "io/shutdown.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"
#include "serve/shard_engine.h"

namespace hdd::serve {

namespace {

// Completion latch for a fan-out of tasks onto shard workers. done() must
// run on every path out of a task, including CrashPoint unwinding, so the
// tasks hold it in an RAII guard.
struct Completion {
  Mutex mu{lock_order::Rank::kServeCompletion, "serve-completion"};
  CondVar cv;
  std::size_t pending HDD_GUARDED_BY(mu) = 0;

  void done() {
    MutexLock lock(&mu);
    --pending;
    cv.notify_all();
  }
  void wait() {
    MutexLock lock(&mu);
    while (pending != 0) cv.wait(mu);
  }
};

struct DoneGuard {
  Completion& comp;
  ~DoneGuard() { comp.done(); }
};

void set_cloexec(int fd) { (void)fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

Server::Server(ShardEngine& engine, ServeOptions options)
    : engine_(engine), options_(std::move(options)) {
  obs::Registry& reg =
      options_.metrics != nullptr ? *options_.metrics : obs::Registry::global();
  m_connections_ =
      &reg.counter("hdd_serve_connections_total", "TCP connections accepted.");
  m_requests_ =
      &reg.counter("hdd_serve_requests_total", "Wire requests handled.");
  m_ingested_ = &reg.counter("hdd_serve_ingest_samples_total",
                             "Samples accepted by the ingest endpoint.");
  m_http_ = &reg.counter("hdd_serve_http_requests_total",
                         "HTTP requests served (metrics scrapes, healthz).");
  m_conns_rejected_ = &reg.counter(
      "hdd_serve_connections_rejected_total",
      "Connections refused at the --max-conns cap or on idle timeout.");
}

Server::~Server() { stop(); }

void Server::start() {
  io::install_shutdown_handlers();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw DataError("serve: socket(): " + std::string(std::strerror(errno)));
  }
  set_cloexec(listen_fd_);
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw ConfigError("serve: bad listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw DataError("serve: cannot listen on " + options_.host + ":" +
                    std::to_string(options_.port) + ": " + what);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (!options_.port_file.empty()) {
    std::ofstream out(options_.port_file, std::ios::trunc);
    out << port_ << "\n";
    if (!out) {
      throw DataError("serve: cannot write port file " + options_.port_file);
    }
  }

  if (::pipe(wake_pipe_) != 0) {
    throw DataError("serve: pipe(): " + std::string(std::strerror(errno)));
  }
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);

  workers_.clear();
  for (std::size_t k = 0; k < engine_.shard_count(); ++k) {
    workers_.push_back(std::make_unique<ShardWorker>());
  }
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    workers_[k]->thread = std::thread([this, k] { worker_loop(k); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  started_ = std::chrono::steady_clock::now();
  log_info() << "serve: listening on " << options_.host << ":" << port_
             << " (" << engine_.shard_count() << " shard(s))";
}

void Server::wait() {
  pollfd fds[1];
  fds[0].fd = io::shutdown_wake_fd();
  fds[0].events = POLLIN;
  while (!stopping_.load(std::memory_order_acquire) &&
         !io::shutdown_requested()) {
    (void)::poll(fds, 1, 200);
  }
  stop();
}

void Server::stop() {
  MutexLock lock(&stop_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);

  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    (void)!::write(wake_pipe_[1], &b, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Kick every open connection out of recv(); their threads then unwind.
  // The thread handles move out under the lock and join outside it — a
  // connection thread's last act is re-taking conn_mu_ to deregister its
  // fd, so joining under the lock would deadlock.
  std::vector<std::thread> conn_threads;
  {
    MutexLock conn_lock(&conn_mu_);
    for (const int fd : conn_fds_) (void)::shutdown(fd, SHUT_RDWR);
    conn_threads.swap(conn_threads_);
  }
  for (std::thread& t : conn_threads) {
    if (t.joinable()) t.join();
  }

  for (const auto& w : workers_) {
    MutexLock wlock(&w->mu);
    w->closed = true;
    w->cv_pop.notify_all();
    w->cv_push.notify_all();
  }
  for (const auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }

  try {
    engine_.seal();
  } catch (const std::exception& e) {
    log_warn() << "serve: seal on shutdown failed: " << e.what();
  } catch (...) {
    // io::CrashPoint (not a std::exception by design): the fault harness
    // already "killed" the store. stop() runs from destructors, so nothing
    // may escape.
  }

  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  stopped_.store(true, std::memory_order_release);
  log_info() << "serve: stopped";
}

void Server::acceptor_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int rc = ::poll(fds, 2, 200);
    if (stopping_.load(std::memory_order_acquire) ||
        io::shutdown_requested()) {
      return;
    }
    if (rc <= 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_cloexec(fd);
    const int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    m_connections_->inc();
    {
      MutexLock lock(&conn_mu_);
      if (options_.max_conns > 0 && conn_fds_.size() >= options_.max_conns) {
        // Over the cap: answer with a clean error frame instead of a
        // silent drop, so well-behaved clients can back off and retry.
        m_conns_rejected_->inc();
        (void)send_all(fd, frame_payload(encode_error_response(
                               Status::kError, "connection limit reached")));
        ::close(fd);
        continue;
      }
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
    }
  }
}

ssize_t Server::recv_idle(int fd, char* buf, std::size_t cap) {
  if (options_.idle_timeout_ms > 0) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, options_.idle_timeout_ms);
    if (rc == 0) {
      m_conns_rejected_->inc();
      return 0;  // idle expiry closes the connection like a peer hangup
    }
    if (rc < 0) return -1;
  }
  return ::recv(fd, buf, cap, 0);
}

void Server::connection_loop(int fd) {
  ConnTrace trace;
  trace.accept_ticks = obs::trace_now_ticks();
  // Sniff the protocol from the first four bytes. "GET " cannot begin a
  // wire frame: as a little-endian length it exceeds kMaxWirePayloadBytes.
  std::string first;
  char buf[4096];
  while (first.size() < 4) {
    const ssize_t n = recv_idle(fd, buf, sizeof(buf));
    if (n <= 0) break;
    first.append(buf, static_cast<std::size_t>(n));
  }
  if (first.size() >= 4) {
    if (first.compare(0, 4, "GET ") == 0) {
      handle_http(fd, first);
    } else {
      handle_wire(fd, first, trace);
    }
  }
  {
    MutexLock lock(&conn_mu_);
    for (std::size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_[i] = conn_fds_.back();
        conn_fds_.pop_back();
        break;
      }
    }
  }
  ::close(fd);
}

void Server::handle_wire(int fd, const std::string& first, ConnTrace& trace) {
  FrameParser parser;
  parser.feed(first);
  std::string payload;
  char buf[64 << 10];
  for (;;) {
    for (;;) {
      const FrameParser::Result res = parser.next(payload);
      if (res == FrameParser::Result::kNeedMore) break;
      if (res == FrameParser::Result::kCorrupt) {
        (void)send_all(fd, frame_payload(encode_error_response(
                               Status::kBadRequest, "corrupt frame")));
        return;
      }
      if (!process_request(fd, payload, trace)) return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    const ssize_t n = recv_idle(fd, buf, sizeof(buf));
    if (n <= 0) return;
    parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

bool Server::process_request(int fd, std::string& payload, ConnTrace& trace) {
  const std::uint64_t t_parse0 = obs::trace_now_ticks();
  auto req = decode_request(payload);
  if (!req) {
    (void)send_all(fd, frame_payload(encode_error_response(
                           Status::kBadRequest, "malformed request")));
    return false;
  }
  m_requests_->inc();

  // Adopt the client's trace id (0 = untraced client: the root span then
  // starts a fresh server-side trace). The first request on a connection
  // also absorbs the accept-to-first-byte interval.
  const obs::WithTraceContext adopt(
      obs::TraceContext{req->trace_id, /*span_id=*/0});
  const std::uint64_t root_start = trace.first ? trace.accept_ticks : t_parse0;
  const obs::ScopedSpan root("serve.request", root_start, "op",
                             static_cast<std::uint64_t>(req->op));
  if (trace.first) {
    trace.first = false;
    obs::record_child_span("serve.accept", trace.accept_ticks, t_parse0);
  }
  obs::record_child_span("wire.parse", t_parse0, obs::trace_now_ticks(),
                         "bytes", static_cast<std::uint64_t>(payload.size()));

  switch (req->op) {
    case Op::kIngest: {
      const std::size_t shards = workers_.size();
      std::vector<IngestBatch> parts;
      if (shards == 1) {
        parts.push_back(std::move(req->ingest));
      } else {
        parts.resize(shards);
        const IngestBatch& batch = req->ingest;
        for (std::size_t i = 0; i < batch.samples.size(); ++i) {
          IngestBatch& p = parts[engine_.shard_of(batch.serials[i])];
          p.serials.push_back(batch.serials[i]);
          p.samples.push_back(batch.samples[i]);
        }
      }

      struct Slot {
        IngestResponse r;
        bool failed = false;
        std::string error;
      };
      std::vector<Slot> slots(parts.size());
      Completion comp;
      for (const IngestBatch& p : parts) {
        if (!p.samples.empty()) ++comp.pending;
      }
      for (std::size_t k = 0; k < parts.size(); ++k) {
        if (parts[k].samples.empty()) continue;
        const std::size_t shard = shards == 1 ? 0 : k;
        const bool posted =
            post(shard, [this, shard, k, &parts, &slots, &comp] {
              DoneGuard g{comp};
              const obs::ScopedSpan span(
                  "shard.ingest", "samples",
                  static_cast<std::uint64_t>(parts[k].samples.size()));
              try {
                slots[k].r = engine_.ingest(shard, parts[k]);
              } catch (const std::exception& e) {
                slots[k].failed = true;
                slots[k].error = e.what();
              }
            });
        if (!posted) {
          slots[k].failed = true;
          slots[k].error = "shard " + std::to_string(shard) + " unavailable";
          comp.done();
        }
      }
      comp.wait();

      IngestResponse merged;
      std::string error;
      for (const Slot& s : slots) {
        if (s.failed && error.empty()) error = s.error;
        merged.accepted += s.r.accepted;
        merged.stale += s.r.stale;
        merged.quarantined += s.r.quarantined;
        merged.journal_failed += s.r.journal_failed;
        merged.degraded = merged.degraded || s.r.degraded;
      }
      if (!error.empty()) {
        return send_response(fd, encode_error_response(Status::kError, error));
      }
      m_ingested_->inc(merged.accepted);
      return send_response(fd, encode_ingest_response(merged));
    }

    case Op::kQuery: {
      const std::size_t shard = engine_.shard_of(req->serial);
      QueryResponse qr;
      bool failed = false;
      Completion comp;
      comp.pending = 1;
      const std::string serial = std::move(req->serial);
      const bool posted = post(shard, [this, &qr, &failed, &serial, &comp] {
        DoneGuard g{comp};
        const obs::ScopedSpan span("shard.query");
        try {
          qr = engine_.query(serial);
        } catch (const std::exception&) {
          failed = true;
        }
      });
      if (!posted) {
        comp.done();
        failed = true;
      }
      comp.wait();
      if (failed) {
        return send_response(
            fd, encode_error_response(Status::kError, "query failed"));
      }
      return send_response(fd, encode_query_response(qr));
    }

    case Op::kStats: {
      std::vector<StatsResponse> per_shard(workers_.size());
      // char, not bool: vector<bool> is bit-packed, so concurrent writes
      // to distinct slots would race on the shared word.
      std::vector<char> got(workers_.size(), 0);
      Completion comp;
      comp.pending = workers_.size();
      for (std::size_t k = 0; k < workers_.size(); ++k) {
        const bool posted = post(k, [this, k, &per_shard, &got, &comp] {
          DoneGuard g{comp};
          try {
            per_shard[k] = engine_.shard_stats(k);
            got[k] = 1;
          } catch (const std::exception&) {
          }
        });
        if (!posted) comp.done();
      }
      comp.wait();
      StatsResponse merged;
      for (std::size_t k = 0; k < per_shard.size(); ++k) {
        // A crashed/unavailable shard reports degraded rather than failing
        // the whole stats call.
        if (!got[k]) {
          merged.degraded = true;
          continue;
        }
        merged.drives += per_shard[k].drives;
        merged.samples += per_shard[k].samples;
        merged.alarms += per_shard[k].alarms;
        merged.degraded = merged.degraded || per_shard[k].degraded;
        merged.generation = std::max(merged.generation,
                                     per_shard[k].generation);
        merged.shadow_samples += per_shard[k].shadow_samples;
        merged.shadow_divergence += per_shard[k].shadow_divergence;
      }
      merged.last_outcome = last_outcome_.load(std::memory_order_relaxed);
      return send_response(fd, encode_stats_response(merged));
    }

    case Op::kShutdown: {
      (void)send_response(fd, encode_shutdown_response());
      io::request_shutdown();
      return false;
    }
  }
  (void)send_all(fd, frame_payload(encode_error_response(Status::kBadRequest,
                                                         "unknown op")));
  return false;
}

void Server::handle_http(int fd, const std::string& first) {
  m_http_->inc();
  std::string req = first;
  char buf[4096];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < (64u << 10)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }

  std::string path = "/";
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
  if (sp2 != std::string::npos) path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query;
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.erase(q);
  }

  const obs::ScopedSpan span("http.request");
  int code = 200;
  const char* reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    obs::Registry& reg = options_.metrics != nullptr ? *options_.metrics
                                                     : obs::Registry::global();
    std::ostringstream os;
    obs::render_prometheus(reg.snapshot(), os);
    body = os.str();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/debug/trace") {
    // ?ms=N bounds the window (default 10 s; ms=0 = everything retained).
    std::uint64_t window_ms = 10'000;
    if (const std::size_t at = query.find("ms="); at != std::string::npos) {
      window_ms = 0;
      for (std::size_t i = at + 3; i < query.size(); ++i) {
        const char c = query[i];
        if (c < '0' || c > '9') break;
        window_ms = window_ms * 10 + static_cast<std::uint64_t>(c - '0');
      }
    }
    body = obs::Tracer::global().render_chrome_json(window_ms);
    content_type = "application/json";
  } else if (path == "/debug/vars") {
    body = debug_vars_json();
    content_type = "application/json";
  } else {
    code = 404;
    reason = "Not Found";
    body = "not found\n";
  }

  std::ostringstream os;
  os << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  (void)send_all(fd, os.str());
}

std::string Server::debug_vars_json() {
  std::size_t conns = 0;
  {
    MutexLock lock(&conn_mu_);
    conns = conn_fds_.size();
  }
  const auto uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count();
  const obs::Tracer& tracer = obs::Tracer::global();
  std::ostringstream os;
  os << "{\"build\":{\"compiler\":\"" << __VERSION__
     << "\",\"cpp\":" << __cplusplus << "}"
     << ",\"pid\":" << ::getpid()
     << ",\"uptime_ms\":" << uptime_ms
     << ",\"shards\":" << engine_.shard_count()
     << ",\"model_generation\":" << engine_.max_generation()
     << ",\"retrain_outcome\":\""
     << pipeline::outcome_name(static_cast<pipeline::Outcome>(
            last_outcome_.load(std::memory_order_relaxed)))
     << "\""
     << ",\"connections\":" << conns
     << ",\"tracing\":" << (tracer.enabled() ? 1 : 0)
     << ",\"trace_slow_threshold_ns\":" << tracer.slow_threshold_ns()
     << ",\"trace_dropped\":" << tracer.dropped() << "}\n";
  return os.str();
}

bool Server::run_on_shard(std::size_t k, const std::function<void()>& task) {
  Completion comp;
  comp.pending = 1;
  const bool posted = post(k, [&task, &comp] {
    DoneGuard g{comp};
    task();
  });
  if (!posted) {
    comp.done();
    return false;
  }
  comp.wait();
  return true;
}

bool Server::post(std::size_t k, std::function<void()> task) {
  if (obs::trace_enabled()) {
    // Carry the enqueuer's trace context onto the worker thread and
    // surface the time the task sat queued. record_child_span no-ops for
    // untraced enqueuers, so uninstrumented callers stay span-free.
    const obs::TraceContext ctx = obs::current_trace_context();
    const std::uint64_t t_enq = obs::trace_now_ticks();
    task = [k, ctx, t_enq, inner = std::move(task)] {
      const obs::WithTraceContext adopt(ctx);
      obs::record_child_span("shard.queue_wait", t_enq,
                             obs::trace_now_ticks(), "shard",
                             static_cast<std::uint64_t>(k));
      inner();
    };
  }
  ShardWorker& w = *workers_[k];
  MutexLock lock(&w.mu);
  while (!w.closed && !w.crashed && w.queue.size() >= options_.max_queue) {
    w.cv_push.wait(w.mu);
  }
  if (w.closed || w.crashed) return false;
  w.queue.push_back(std::move(task));
  w.cv_pop.notify_one();
  return true;
}

void Server::worker_loop(std::size_t k) {
  ShardWorker& w = *workers_[k];
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&w.mu);
      while (!w.closed && w.queue.empty()) w.cv_pop.wait(w.mu);
      if (w.queue.empty()) return;  // closed and fully drained
      task = std::move(w.queue.front());
      w.queue.pop_front();
      w.cv_push.notify_one();
    }
    try {
      task();
    } catch (const io::CrashPoint&) {
      // The fault plan "killed" this shard mid-write. Real crash-resume is
      // exercised by restarting the engine; here we just fence the shard
      // off so no post-crash writes contaminate its journal.
      MutexLock lock(&w.mu);
      w.crashed = true;
      w.cv_push.notify_all();
      log_warn() << "serve: shard " << k
                 << " hit an injected crash point; fenced until restart";
    }
  }
}

bool Server::send_response(int fd, std::string_view payload) {
  const std::uint64_t t0 = obs::trace_now_ticks();
  const std::string framed = frame_payload(payload);
  const bool ok = send_all(fd, framed);
  obs::record_child_span("wire.respond", t0, obs::trace_now_ticks(), "bytes",
                         static_cast<std::uint64_t>(framed.size()));
  return ok;
}

bool Server::send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace hdd::serve
