// Kill-and-resume demonstration of the durable telemetry store.
//
// A monitoring node trains a CT model, then streams synthetic fleet
// telemetry through a journaled FleetScorer: each interval is appended to
// the crash-safe log before it is scored. Halfway through, the process
// "crashes" — the scorer object is destroyed and only the on-disk store
// survives. A fresh scorer resumes from the log and monitoring continues.
// The program verifies that every alarm (drive, hour) of the interrupted
// run matches an uninterrupted reference run exactly, then prints the
// monitoring node's own metrics (scored samples, alarms, journal and
// recovery counters) as a Prometheus snapshot — what a real deployment
// would scrape.
//
// Usage: durable_monitor [store_dir] [fleet_scale]
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/fleet.h"
#include "core/predictor.h"
#include "core/runtime.h"
#include "core/scorer.h"
#include "data/split.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "sim/generator.h"
#include "store/telemetry_store.h"

using namespace hdd;

namespace {

// One interval of telemetry for every monitored drive: sample index `t` of
// each drive's record, stamped with the common interval hour.
std::vector<smart::Sample> interval_at(
    const std::vector<const smart::DriveRecord*>& drives, std::size_t t,
    std::int64_t hour) {
  std::vector<smart::Sample> out;
  out.reserve(drives.size());
  for (const auto* d : drives) {
    smart::Sample s = d->samples[t];
    s.hour = hour;  // a real collector stamps its own clock
    out.push_back(s);
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> alarms(
    const core::FleetScorer& f) {
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const std::size_t i : f.alarmed_drives()) {
    out.emplace_back(f.serial(i), f.state(i).alarm_hour());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/hddpredict_durable_monitor";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  std::filesystem::remove_all(dir);

  std::cout << "Training a CT model on one week of family-W telemetry...\n";
  auto config = sim::paper_fleet_config(scale, 7);
  config.families.resize(1);
  const auto fleet = sim::generate_fleet_window(config, 0, 1);
  const auto split = data::split_dataset(fleet, {});
  core::FailurePredictor predictor(core::preset("ct"));
  predictor.fit(fleet, split);
  const auto scorer = core::make_tree_scorer(*predictor.tree());

  // Monitor every drive with a record spanning the whole week, stepping
  // through its samples as live intervals.
  std::vector<const smart::DriveRecord*> monitored;
  std::size_t steps = SIZE_MAX;
  for (const auto& d : fleet.drives) {
    if (d.samples.size() < 24) continue;
    monitored.push_back(&d);
    steps = std::min(steps, d.samples.size());
  }
  std::cout << "  monitoring " << monitored.size() << " drives over "
            << steps << " intervals\n\n";

  core::FleetScorerConfig fc;
  fc.features = predictor.config().training.features;
  fc.vote = predictor.config().vote;
  const auto add_all = [&](core::FleetScorer& f) {
    for (const auto* d : monitored) f.add_drive(d->serial);
  };

  // Reference: one uninterrupted run (no journal needed).
  core::FleetScorer reference(*scorer, fc);
  add_all(reference);
  for (std::size_t t = 0; t < steps; ++t) {
    reference.observe_samples(interval_at(monitored, t, (std::int64_t)t), t);
  }
  std::cout << "Reference run: " << reference.alarm_count()
            << " drives in alarm.\n";

  // Everything a durable monitoring node needs — model, journaled store
  // and voting config — is one FleetRuntime (the same builder behind
  // `hddpredict replay` and the serve daemon).
  core::FleetRuntimeConfig rc;
  rc.scorer = scorer.get();
  rc.store_dir = dir;
  rc.features = fc.features;
  rc.vote = fc.vote;

  // Journaled run, killed halfway.
  const std::size_t kill_at = steps / 2;
  {
    core::FleetRuntime live(rc);
    add_all(live.fleet());
    for (std::size_t t = 0; t < kill_at; ++t) {
      live.fleet().observe_samples(interval_at(monitored, t, (std::int64_t)t),
                                   t);
    }
    std::cout << "Journaled run: observed " << kill_at << " intervals ("
              << live.store().sample_count()
              << " samples on disk), then CRASH.\n";
  }  // the scorer and all its voting state die here

  // A fresh process: recover the log, resume, continue monitoring.
  core::FleetRuntime runtime(rc);
  const auto r = runtime.resume();
  std::cout << "Resumed from " << runtime.store().directory() << ": replayed "
            << r.samples_replayed << " samples for " << r.drives
            << " drives through hour " << r.last_hour << ".\n";
  core::FleetScorer& resumed = runtime.fleet();
  for (auto t = static_cast<std::size_t>(r.last_hour + 1); t < steps; ++t) {
    resumed.observe_samples(interval_at(monitored, t, (std::int64_t)t), t);
  }

  const auto expected = alarms(reference);
  const auto actual = alarms(resumed);
  std::cout << "Resumed run:   " << resumed.alarm_count()
            << " drives in alarm.\n\n";
  if (actual == expected) {
    std::cout << "OK: all " << actual.size()
              << " alarm decisions (drive, hour) are identical to the "
                 "uninterrupted run.\n";
  } else {
    std::cout << "MISMATCH between resumed and reference alarms!\n";
    return 1;
  }

  // The node's own operational metrics — every subsystem above reported
  // into the global registry (scoring, voting, journal appends, the
  // resume, the recovery scan). A deployment would expose this endpoint;
  // here the fleet counters are printed as a scrape would see them.
  std::cout << "\nMonitoring-node metrics (hdd_fleet_*):\n";
  const auto snapshot = obs::Registry::global().snapshot();
  obs::Snapshot fleet_only;
  for (const auto& m : snapshot.metrics) {
    if (m.name.rfind("hdd_fleet_", 0) == 0 &&
        m.type != obs::MetricType::kHistogram) {
      fleet_only.metrics.push_back(m);
    }
  }
  obs::render_prometheus(fleet_only, std::cout);

  std::filesystem::remove_all(dir);
  return 0;
}
