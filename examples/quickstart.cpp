// Quickstart: generate a synthetic SMART fleet, train the paper's CT model,
// evaluate drive-level detection, and print the learned tree.
//
// Usage: quickstart [fleet_scale] [seed]
//   fleet_scale — fraction of the paper's Table I fleet (default 0.2)
//   seed        — fleet RNG seed (default 42)
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/predictor.h"
#include "data/split.h"
#include "eval/detection.h"
#include "sim/generator.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::cout << "Generating synthetic fleet (scale " << scale << ", seed "
            << seed << ")...\n";
  auto config = hdd::sim::paper_fleet_config(scale, seed);
  // The quickstart uses family "W" and one week of good telemetry, exactly
  // like Section V-A of the paper.
  config.families.resize(1);
  const auto fleet = hdd::sim::generate_fleet_window(config, 0, 1);
  std::cout << "  " << fleet.count_good() << " good drives, "
            << fleet.count_failed() << " failed drives, "
            << fleet.count_samples(false) + fleet.count_samples(true)
            << " samples\n";

  const auto split = hdd::data::split_dataset(fleet, {});

  hdd::core::FailurePredictor predictor(hdd::core::preset("ct"));
  predictor.fit(fleet, split);
  std::cout << "\nTrained: " << predictor.describe() << "\n";

  const auto result = predictor.evaluate(fleet, split);
  std::cout << "\nDrive-level detection (" << result.n_good << " good / "
            << result.n_failed << " failed test drives):\n";
  hdd::Table table({"metric", "value"});
  table.row().cell("FDR (%)").cell(100.0 * result.fdr(), 2);
  table.row().cell("FAR (%)").cell(100.0 * result.far(), 3);
  table.row().cell("mean TIA (hours)").cell(result.mean_tia(), 1);
  table.print(std::cout);

  std::cout << "\nLearned classification tree (Figure 1 style):\n";
  const auto& features = predictor.config().training.features;
  std::cout << predictor.tree()->to_text(&features);
  return 0;
}
