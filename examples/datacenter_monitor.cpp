// Data-center monitoring scenario (the paper's Section I motivation):
//
// An operator trains the health-degree model on last week's telemetry,
// then replays "today" hour by hour. Each drive whose averaged health
// drops below the threshold raises a warning; warnings are handled from a
// priority queue ordered by health degree, so the most at-risk drives get
// migrated first and the operator's limited repair bandwidth is spent
// where it matters (the paper's answer to false-alarm processing cost).
//
// Usage: datacenter_monitor [fleet_scale] [migrations_per_day]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <span>

#include "common/table.h"
#include "core/health.h"
#include "core/runtime.h"
#include "core/scorer.h"
#include "data/split.h"
#include "sim/generator.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const int budget_per_day = argc > 2 ? std::atoi(argv[2]) : 3;

  std::cout << "Training the health-degree model on one week of telemetry "
               "(scale " << scale << ")...\n";
  auto config = hdd::sim::paper_fleet_config(scale, 7);
  config.families.resize(1);
  const auto fleet = hdd::sim::generate_fleet_window(config, 0, 1);
  const auto split = hdd::data::split_dataset(fleet, {});

  hdd::core::HealthModelConfig model_cfg;
  model_cfg.threshold = -0.2;
  hdd::core::HealthDegreeModel model(model_cfg);
  model.fit(fleet, split);
  std::cout << "  trained RT with "
            << model.regression_tree().node_count() << " nodes over "
            << model.windows().size() << " personalized windows\n\n";

  // Replay: walk the test drives, collect warnings with their health.
  hdd::core::WarningQueue queue;
  std::size_t failed_warned = 0, good_warned = 0, failed_total = 0;
  std::map<std::string, bool> is_failed;
  for (std::size_t di : split.test_failed) {
    const auto& d = fleet.drives[di];
    if (d.empty()) continue;
    ++failed_total;
    const auto outcome = model.detect(d);
    if (outcome.alarmed) {
      const auto idx = d.last_sample_at_or_before(outcome.alarm_hour);
      queue.push({d.serial, model.health(d, static_cast<std::size_t>(idx)),
                  outcome.alarm_hour});
      is_failed[d.serial] = true;
      ++failed_warned;
    }
  }
  // Good drives stream through a FleetRuntime — the same builder behind
  // `hddpredict replay` and the serve daemon — configured once from the
  // health model instead of re-assembling a VoteConfig by hand.
  const auto good_scorer =
      hdd::core::make_tree_scorer(model.regression_tree());
  hdd::core::FleetRuntimeConfig rc;
  rc.scorer = good_scorer.get();
  rc.features = model.config().ct_config.training.features;
  rc.vote.voters = model.config().voters;
  rc.vote.average_mode = true;
  rc.vote.threshold = model.config().threshold;
  rc.quarantine = hdd::core::QuarantinePolicy::kOff;  // synthetic telemetry
  hdd::core::FleetRuntime runtime(rc);                // in-memory, no journal
  for (std::size_t k = 0; k < split.good_drives.size(); ++k) {
    const auto& d = fleet.drives[split.good_drives[k]];
    const std::size_t begin = split.good_test_begin[k];
    if (begin >= d.samples.size()) continue;
    const std::size_t i = runtime.fleet().add_drive(d.serial);
    runtime.fleet().ingest_drive(
        i, std::span(d.samples).subspan(begin));
    const auto& st = runtime.fleet().state(i);
    if (st.alarmed()) {
      const auto idx = d.last_sample_at_or_before(st.alarm_hour());
      queue.push({d.serial, model.health(d, static_cast<std::size_t>(idx)),
                  st.alarm_hour()});
      is_failed[d.serial] = false;
      ++good_warned;
    }
  }

  std::cout << "Warnings raised: " << queue.size() << " ("
            << failed_warned << "/" << failed_total
            << " actually-failing drives, " << good_warned
            << " false alarms)\n\n";

  // Process warnings in health order under a daily migration budget.
  std::cout << "Processing order (worst health first), budget "
            << budget_per_day << " migrations/day:\n";
  hdd::Table t({"day", "drive", "health", "really failing?"});
  int day = 1, today = 0;
  std::size_t failing_in_first_two_days = 0;
  std::size_t processed = 0;
  while (!queue.empty()) {
    const auto w = queue.pop();
    t.row()
        .cell(static_cast<long long>(day))
        .cell(w.serial)
        .cell(w.health, 3)
        .cell(is_failed[w.serial] ? "YES" : "no");
    if (day <= 2 && is_failed[w.serial]) ++failing_in_first_two_days;
    ++processed;
    if (++today == budget_per_day) {
      today = 0;
      ++day;
    }
    if (processed >= 24) break;  // table stays readable
  }
  t.print(std::cout);

  std::cout << "\nWith health-ordered processing, "
            << failing_in_first_two_days
            << " genuinely failing drives were handled in the first two "
               "days;\nfalse alarms sink to the back of the queue instead "
               "of blocking real failures.\n";
  return 0;
}
