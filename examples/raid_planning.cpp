// Storage-procurement planning scenario (the paper's Section VI):
//
// Given a target fleet size and a measured prediction model, compare the
// reliability and cost trade-offs of four designs — enterprise SAS RAID-6,
// consumer SATA RAID-6, SATA RAID-6 with proactive fault tolerance, and
// SATA RAID-5 with proactive fault tolerance — and answer the paper's
// question: can cheap drives plus prediction replace expensive drives
// and/or extra redundancy?
//
// Usage: raid_planning [n_drives] [fdr] [tia_hours]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "reliability/raid.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 500;
  const double fdr = argc > 2 ? std::atof(argv[2]) : 0.9549;
  const double tia = argc > 3 ? std::atof(argv[3]) : 355.0;

  const double sas_mttf = 1.99e6, sata_mttf = 1.39e6, mttr = 8.0;
  // Illustrative cost model: enterprise drives ~2.2x consumer price;
  // RAID-5 needs one less parity drive's worth of capacity than RAID-6.
  const double sata_cost = 1.0, sas_cost = 2.2;
  const double raid6_overhead = 2.0 / 10.0;  // 2 parity per 10-drive group
  const double raid5_overhead = 1.0 / 10.0;

  std::cout << "Planning a " << n << "-drive pool; prediction model: FDR "
            << hdd::format_double(100 * fdr, 2) << "%, TIA "
            << hdd::format_double(tia, 0) << " h\n\n";

  hdd::reliability::RaidPredictionParams p6;
  p6.n_drives = n;
  p6.tolerated_failures = 2;
  p6.mttf_hours = sata_mttf;
  p6.mttr_hours = mttr;
  p6.fdr = fdr;
  p6.tia_hours = tia;
  auto p5 = p6;
  p5.tolerated_failures = 1;

  struct Design {
    const char* name;
    double mttdl_hours;
    double relative_cost;
  };
  const Design designs[] = {
      {"SAS RAID-6, no prediction",
       hdd::reliability::mttdl_raid6_no_prediction(sas_mttf, mttr, n),
       sas_cost * (1.0 + raid6_overhead)},
      {"SATA RAID-6, no prediction",
       hdd::reliability::mttdl_raid6_no_prediction(sata_mttf, mttr, n),
       sata_cost * (1.0 + raid6_overhead)},
      {"SATA RAID-6 + prediction",
       hdd::reliability::mttdl_raid_with_prediction(p6),
       sata_cost * (1.0 + raid6_overhead)},
      {"SATA RAID-5 + prediction",
       hdd::reliability::mttdl_raid_with_prediction(p5),
       sata_cost * (1.0 + raid5_overhead)},
  };

  hdd::Table t({"design", "MTTDL (years)", "relative cost/TB",
                "reliability per cost"});
  const double base_cost = designs[0].relative_cost;
  for (const auto& d : designs) {
    const double years = d.mttdl_hours / hdd::reliability::kHoursPerYear;
    t.row()
        .cell(d.name)
        .cell(years, 1)
        .cell(d.relative_cost / base_cost, 2)
        .cell(years / (d.relative_cost / base_cost), 1);
  }
  t.print(std::cout);

  const double gain = designs[2].mttdl_hours / designs[0].mttdl_hours;
  std::cout << "\nSATA RAID-6 with prediction is "
            << hdd::format_double(gain, 0)
            << "x more reliable than SAS RAID-6 without it, at "
            << hdd::format_double(
                   100 * designs[2].relative_cost / designs[0].relative_cost,
                   0)
            << "% of the cost.\n"
            << "SATA RAID-5 with prediction trades parity overhead for "
               "prediction: "
            << hdd::format_double(designs[3].mttdl_hours /
                                      designs[1].mttdl_hours, 2)
            << "x the MTTDL of unpredicted SATA RAID-6 at lower capacity "
               "overhead.\n";
  return 0;
}
