// Operating-point selection: a deployment rarely wants "the model" — it
// wants "at most X false alarms per week for my fleet size". This example
// trains the paper's CT and RT models, then uses the tuning utilities to
// pick the voting parameters that maximize detection under a false-alarm
// budget, with k-fold cross-validation to show the variance an operator
// should expect.
//
// Usage: operating_point [fleet_scale] [far_budget]
#include <cstdlib>
#include <iostream>

#include "common/math_util.h"
#include "common/table.h"
#include "core/health.h"
#include "core/predictor.h"
#include "data/cross_validation.h"
#include "data/split.h"
#include "eval/tuning.h"
#include "sim/generator.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;
  const double budget = argc > 2 ? std::atof(argv[2]) : 0.001;

  auto config = hdd::sim::paper_fleet_config(scale, 77);
  config.families.resize(1);
  const auto fleet = hdd::sim::generate_fleet_window(config, 0, 1);
  const auto split = hdd::data::split_dataset(fleet, {});
  std::cout << "Fleet: " << fleet.count_good() << " good / "
            << fleet.count_failed() << " failed drives; FAR budget "
            << hdd::format_double(100 * budget, 2) << "%\n\n";

  // CT: tune the voter count.
  {
    hdd::core::FailurePredictor ct(hdd::core::preset("ct"));
    ct.fit(fleet, split);
    const auto scores = hdd::eval::score_dataset(
        fleet, split, ct.config().training.features, ct.sample_model());
    const int candidates[] = {1, 3, 5, 7, 9, 11, 15, 17, 21, 27};
    const auto best = hdd::eval::tune_voters(scores, candidates, budget);
    if (best) {
      std::cout << "CT: use N = " << best->vote.voters << " voters -> FDR "
                << hdd::format_double(100 * best->result.fdr(), 1)
                << "% at FAR "
                << hdd::format_double(100 * best->result.far(), 3)
                << "%, TIA "
                << hdd::format_double(best->result.mean_tia(), 0) << " h\n";
    } else {
      std::cout << "CT: no voter count meets the budget — lower the "
                   "detection ambition or retrain.\n";
    }
  }

  // RT health model: tune the threshold at N = 11.
  {
    hdd::core::HealthDegreeModel rt;
    rt.fit(fleet, split);
    const auto scores = hdd::eval::score_dataset(
        fleet, split, rt.config().ct_config.training.features,
        rt.sample_model());
    const auto thresholds = hdd::linspace(-0.9, 0.0, 19);
    const auto best =
        hdd::eval::tune_threshold(scores, 11, thresholds, budget);
    if (best) {
      std::cout << "RT: use threshold "
                << hdd::format_double(best->vote.threshold, 2)
                << " -> FDR "
                << hdd::format_double(100 * best->result.fdr(), 1)
                << "% at FAR "
                << hdd::format_double(100 * best->result.far(), 3)
                << "%, TIA "
                << hdd::format_double(best->result.mean_tia(), 0) << " h\n";
    } else {
      std::cout << "RT: no threshold meets the budget.\n";
    }
  }

  // Cross-validated stability of the chosen CT configuration.
  std::cout << "\n3-fold cross-validated CT detection (FDR per fold):\n";
  hdd::data::CrossValidationConfig cv;
  cv.folds = 3;
  const auto fdrs = hdd::data::cross_validate(
      fleet, cv, [&fleet](const hdd::data::DatasetSplit& fold) {
        hdd::core::FailurePredictor p(hdd::core::preset("ct"));
        p.fit(fleet, fold);
        return p.evaluate(fleet, fold).fdr();
      });
  hdd::Table t({"fold", "FDR (%)"});
  for (std::size_t f = 0; f < fdrs.size(); ++f) {
    t.row().cell(static_cast<long long>(f + 1)).cell(100 * fdrs[f], 1);
  }
  t.print(std::cout);
  std::cout << "mean " << hdd::format_double(100 * hdd::mean(fdrs), 1)
            << "%, stddev " << hdd::format_double(100 * hdd::stddev(fdrs), 1)
            << "% — the stability the paper attributes to trees.\n";
  return 0;
}
