// Real-data bridge: how a user plugs their own SMART dumps into the
// pipeline. This example exports a synthetic fleet to the documented CSV
// schema (stand-in for e.g. a Backblaze export resampled to hours), then
// walks the exact workflow a user with real data would follow:
//   load CSV -> chronological split -> train CT -> evaluate -> persist
//   the model for the monitoring hosts.
//
// Usage: real_data_bridge [csv_path]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "data/csv_io.h"
#include "data/split.h"
#include "sim/generator.h"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/hddpred_example_fleet.csv";

  // Step 0 (demo only): manufacture a "real" dataset on disk.
  {
    auto config = hdd::sim::paper_fleet_config(0.05, 99);
    config.families.resize(1);
    const auto fleet = hdd::sim::generate_fleet_window(config, 0, 1);
    hdd::data::save_csv_file(fleet, path);
    std::cout << "Wrote demo telemetry to " << path << " ("
              << fleet.count_samples(false) + fleet.count_samples(true)
              << " samples)\n";
  }

  // Step 1: load the CSV (this is where your data enters).
  const auto fleet = hdd::data::load_csv_file(path);
  std::cout << "Loaded " << fleet.count_good() << " good / "
            << fleet.count_failed() << " failed drives from CSV\n";

  // Step 2: chronological split, exactly like the paper's evaluation.
  const auto split = hdd::data::split_dataset(fleet, {});

  // Step 3: train the paper's CT configuration.
  hdd::core::FailurePredictor predictor(hdd::core::preset("ct"));
  predictor.fit(fleet, split);
  std::cout << "Trained: " << predictor.describe() << "\n";

  // Step 4: evaluate before deploying.
  const auto r = predictor.evaluate(fleet, split);
  std::cout << "Holdout: FDR "
            << hdd::format_double(100.0 * r.fdr(), 1) << "%, FAR "
            << hdd::format_double(100.0 * r.far(), 3) << "%, mean TIA "
            << hdd::format_double(r.mean_tia(), 0) << " h\n";

  // Step 5: persist the model for the monitoring hosts.
  const std::string model_path = path + ".model";
  hdd::core::save_tree_file(*predictor.tree(), model_path);
  std::cout << "Model saved to " << model_path << "\n";

  // A monitoring host would then do:
  const auto deployed = hdd::core::load_tree_file(model_path);
  const auto& features = predictor.config().training.features;
  const auto& some_drive = fleet.drives.front();
  const auto row = hdd::smart::extract_features(
      some_drive, some_drive.samples.size() - 1, features);
  std::cout << "Deployed model scores drive " << some_drive.serial
            << " at margin "
            << hdd::format_double(deployed.predict(*row), 3)
            << " (negative = failing)\n";

  std::remove(model_path.c_str());
  return 0;
}
