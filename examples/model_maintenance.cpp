// Model-maintenance scenario (Section V-B3): an operator deciding how often
// to retrain. Simulates eight weeks of fleet drift under three strategies
// and prints the weekly false-alarm load each one would have generated,
// translated into operator workload (alarms to triage per week).
//
// Usage: model_maintenance [fleet_scale]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/predictor.h"
#include "tree/tree.h"
#include "update/strategies.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.08;

  auto fleet = hdd::sim::paper_fleet_config(scale, 42);
  fleet.families.resize(1);  // family W
  const auto n_good = fleet.families[0].n_good;

  std::cout << "Simulating 8 weeks of drift over " << n_good
            << " good drives (scale " << scale << ")...\n\n";

  const auto paper = hdd::core::preset("ct");
  const hdd::update::ModelTrainer trainer =
      [&paper](const hdd::data::DataMatrix& m) {
        auto tree = std::make_shared<hdd::tree::DecisionTree>();
        tree->fit(m, hdd::tree::Task::kClassification, paper.tree_params);
        return hdd::eval::SampleModel(
            [tree](std::span<const float> x) { return tree->predict(x); });
      };

  struct Strat {
    hdd::update::Strategy strategy;
    int cycle;
    const char* label;
  };
  const Strat strategies[] = {
      {hdd::update::Strategy::kFixed, 1, "train once, use forever"},
      {hdd::update::Strategy::kAccumulation, 1, "retrain on all history"},
      {hdd::update::Strategy::kReplacing, 1, "retrain weekly on last week"},
  };

  hdd::Table t({"strategy", "wk2", "wk3", "wk4", "wk5", "wk6", "wk7", "wk8",
                "total false alarms"});
  for (const auto& s : strategies) {
    hdd::update::LongTermConfig cfg;
    cfg.strategy = s.strategy;
    cfg.replace_cycle_weeks = s.cycle;
    cfg.training = paper.training;
    cfg.vote = paper.vote;
    const auto weekly = hdd::update::simulate_long_term(fleet, trainer, cfg);

    auto row = t.row();
    row.cell(s.label);
    double total_fa = 0.0;
    for (const auto& w : weekly) {
      const double alarms = w.far * static_cast<double>(n_good);
      total_fa += alarms;
      row.cell(alarms, 0);
    }
    row.cell(total_fa, 0);
  }
  t.print(std::cout);

  std::cout << "\nEach cell is the number of good drives falsely flagged "
               "that week — the triage\nworkload a stale model dumps on the "
               "operations team. Weekly retraining on the\nlatest week "
               "(the paper's best strategy) keeps it nearly flat.\n";
  return 0;
}
